#include "tinkerpop/traversal.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/profiler.h"

namespace graphbench {

namespace {

// Operator labels for the profile() analogue: one row per step kind.
const char* StepName(GremlinStep::Kind kind) {
  switch (kind) {
    case GremlinStep::Kind::kV: return "V()";
    case GremlinStep::Kind::kHasIndexed: return "has(indexed)";
    case GremlinStep::Kind::kHas: return "has()";
    case GremlinStep::Kind::kOut: return "out()";
    case GremlinStep::Kind::kIn: return "in()";
    case GremlinStep::Kind::kBoth: return "both()";
    case GremlinStep::Kind::kValues: return "values()";
    case GremlinStep::Kind::kDedup: return "dedup()";
    case GremlinStep::Kind::kLimit: return "limit()";
    case GremlinStep::Kind::kCount: return "count()";
    case GremlinStep::Kind::kAs: return "as()";
    case GremlinStep::Kind::kWhereNeq: return "where(neq)";
    case GremlinStep::Kind::kShortestPath: return "repeat(both()).until()";
    case GremlinStep::Kind::kOrderBy: return "order().by()";
    case GremlinStep::Kind::kGroupCount: return "groupCount()";
    case GremlinStep::Kind::kValueMap: return "valueMap()";
    case GremlinStep::Kind::kAddEdgeTo: return "addE(to)";
    case GremlinStep::Kind::kDropEdgeTo: return "dropE(to)";
    case GremlinStep::Kind::kAddV: return "addV()";
    case GremlinStep::Kind::kAddE: return "addE()";
  }
  return "step";
}

/// A traverser: the current element (vertex or value) plus path marks from
/// As() steps, as in TinkerPop's traverser model.
struct Traverser {
  bool is_vertex = true;
  GVertex vertex;
  Value value;
  std::vector<std::pair<std::string, uint64_t>> marks;

  uint64_t MarkOf(const std::string& name) const {
    for (const auto& [k, v] : marks) {
      if (k == name) return v;
    }
    return ~uint64_t{0};
  }
};

Result<int> BfsShortestPath(GremlinGraph* graph, GVertex start,
                            const GremlinStep& step) {
  // repeat(both(label).dedup()).until(has(key, value)): breadth-first
  // expansion through per-vertex Adjacent() calls with a has() probe per
  // discovered vertex — the step-machine way to answer a shortest path.
  GB_ASSIGN_OR_RETURN(Value start_val, graph->Property(start, step.key));
  if (start_val == step.value) return 0;
  std::unordered_set<uint64_t> visited{start.id};
  std::deque<GVertex> frontier{start};
  for (int depth = 1; depth <= int(step.n); ++depth) {
    size_t level = frontier.size();
    if (level == 0) break;
    for (size_t i = 0; i < level; ++i) {
      GVertex v = frontier.front();
      frontier.pop_front();
      GB_ASSIGN_OR_RETURN(std::vector<GVertex> neighbors,
                          graph->Adjacent(v, step.label, Direction::kBoth));
      for (GVertex n : neighbors) {
        if (!visited.insert(n.id).second) continue;
        GB_ASSIGN_OR_RETURN(Value val, graph->Property(n, step.key));
        if (val == step.value) return depth;
        frontier.push_back(n);
      }
    }
  }
  return -1;
}

}  // namespace

Result<std::vector<Value>> ExecuteTraversal(GremlinGraph* graph,
                                            const Traversal& traversal) {
  // Root operator (TinkerPop's terminal iterate()): the per-step timers
  // below nest under it, so its self time is the step-machine glue —
  // traverser-set management and the dispatch loop itself.
  obs::OpTimer root_op("iterate()");
  std::vector<Traverser> set;
  bool started = false;

  const auto& steps = traversal.steps();
  for (size_t si = 0; si < steps.size(); ++si) {
    const GremlinStep& step = steps[si];
    obs::OpTimer op(StepName(step.kind));
    switch (step.kind) {
      case GremlinStep::Kind::kV: {
        // g.V().has(l,k,v) immediately after V() uses the provider index.
        if (si + 1 < steps.size() &&
            steps[si + 1].kind == GremlinStep::Kind::kHasIndexed) {
          break;  // the next step starts the traversal itself
        }
        GB_ASSIGN_OR_RETURN(std::vector<GVertex> all,
                            graph->AllVertices(step.label));
        for (GVertex v : all) set.push_back(Traverser{true, v, Value(), {}});
        started = true;
        break;
      }
      case GremlinStep::Kind::kHasIndexed: {
        GB_ASSIGN_OR_RETURN(
            std::vector<GVertex> found,
            graph->VerticesByProperty(step.label, step.key, step.value));
        if (!started) {
          for (GVertex v : found) {
            set.push_back(Traverser{true, v, Value(), {}});
          }
          started = true;
        } else {
          // Used mid-traversal: behaves as a filter.
          std::unordered_set<uint64_t> ids;
          for (GVertex v : found) ids.insert(v.id);
          std::vector<Traverser> kept;
          for (Traverser& t : set) {
            if (t.is_vertex && ids.count(t.vertex.id)) {
              kept.push_back(std::move(t));
            }
          }
          set = std::move(kept);
        }
        break;
      }
      case GremlinStep::Kind::kHas: {
        std::vector<Traverser> kept;
        for (Traverser& t : set) {
          if (!t.is_vertex) continue;
          GB_ASSIGN_OR_RETURN(Value v,
                              graph->Property(t.vertex, step.key));
          if (v == step.value) kept.push_back(std::move(t));
        }
        set = std::move(kept);
        break;
      }
      case GremlinStep::Kind::kOut:
      case GremlinStep::Kind::kIn:
      case GremlinStep::Kind::kBoth: {
        Direction dir = step.kind == GremlinStep::Kind::kOut
                            ? Direction::kOut
                            : step.kind == GremlinStep::Kind::kIn
                                  ? Direction::kIn
                                  : Direction::kBoth;
        std::vector<Traverser> next;
        for (const Traverser& t : set) {
          if (!t.is_vertex) {
            return Status::InvalidArgument("adjacency step on a value");
          }
          GB_ASSIGN_OR_RETURN(std::vector<GVertex> neighbors,
                              graph->Adjacent(t.vertex, step.label, dir));
          for (GVertex n : neighbors) {
            Traverser nt = t;
            nt.vertex = n;
            next.push_back(std::move(nt));
          }
        }
        set = std::move(next);
        break;
      }
      case GremlinStep::Kind::kValues: {
        for (Traverser& t : set) {
          if (!t.is_vertex) {
            return Status::InvalidArgument("values() on a value");
          }
          GB_ASSIGN_OR_RETURN(Value v,
                              graph->Property(t.vertex, step.key));
          t.is_vertex = false;
          t.value = std::move(v);
        }
        break;
      }
      case GremlinStep::Kind::kDedup: {
        std::vector<Traverser> kept;
        std::unordered_set<uint64_t> seen_ids;
        std::unordered_set<Value, ValueHash> seen_values;
        for (Traverser& t : set) {
          bool fresh = t.is_vertex ? seen_ids.insert(t.vertex.id).second
                                   : seen_values.insert(t.value).second;
          if (fresh) kept.push_back(std::move(t));
        }
        set = std::move(kept);
        break;
      }
      case GremlinStep::Kind::kLimit: {
        if (set.size() > size_t(step.n)) set.resize(size_t(step.n));
        break;
      }
      case GremlinStep::Kind::kCount: {
        std::vector<Value> out{Value(int64_t(set.size()))};
        op.AddRows(out.size());
        return out;
      }
      case GremlinStep::Kind::kAs: {
        for (Traverser& t : set) {
          if (!t.is_vertex) {
            return Status::InvalidArgument("as() on a value");
          }
          t.marks.emplace_back(step.name, t.vertex.id);
        }
        break;
      }
      case GremlinStep::Kind::kWhereNeq: {
        std::vector<Traverser> kept;
        for (Traverser& t : set) {
          if (!t.is_vertex) continue;
          if (t.vertex.id != t.MarkOf(step.name)) {
            kept.push_back(std::move(t));
          }
        }
        set = std::move(kept);
        break;
      }
      case GremlinStep::Kind::kShortestPath: {
        for (Traverser& t : set) {
          if (!t.is_vertex) {
            return Status::InvalidArgument("shortest path on a value");
          }
          GB_ASSIGN_OR_RETURN(int depth,
                              BfsShortestPath(graph, t.vertex, step));
          t.is_vertex = false;
          t.value = Value(int64_t{depth});
        }
        break;
      }
      case GremlinStep::Kind::kOrderBy: {
        // One property request per traverser, then sort.
        std::vector<std::pair<Value, size_t>> keys;
        keys.reserve(set.size());
        for (size_t i = 0; i < set.size(); ++i) {
          if (!set[i].is_vertex) {
            return Status::InvalidArgument("order().by(key) on a value");
          }
          GB_ASSIGN_OR_RETURN(Value v,
                              graph->Property(set[i].vertex, step.key));
          keys.emplace_back(std::move(v), i);
        }
        bool desc = step.n != 0;
        std::stable_sort(keys.begin(), keys.end(),
                         [desc](const auto& a, const auto& b) {
                           int c = a.first.Compare(b.first);
                           return desc ? c > 0 : c < 0;
                         });
        std::vector<Traverser> ordered;
        ordered.reserve(set.size());
        for (const auto& [v, i] : keys) ordered.push_back(std::move(set[i]));
        set = std::move(ordered);
        break;
      }
      case GremlinStep::Kind::kGroupCount: {
        // Terminal-shaped step: count traversers per vertex, one key
        // property request per distinct vertex.
        std::unordered_map<uint64_t, int64_t> by_vertex;
        std::unordered_map<uint64_t, GVertex> handles;
        for (const Traverser& t : set) {
          if (!t.is_vertex) {
            return Status::InvalidArgument("groupCount() on a value");
          }
          ++by_vertex[t.vertex.id];
          handles.emplace(t.vertex.id, t.vertex);
        }
        struct Entry {
          Value key;
          int64_t count;
        };
        std::vector<Entry> entries;
        entries.reserve(by_vertex.size());
        for (const auto& [id, count] : by_vertex) {
          GB_ASSIGN_OR_RETURN(Value key,
                              graph->Property(handles.at(id), step.key));
          entries.push_back(Entry{std::move(key), count});
        }
        std::sort(entries.begin(), entries.end(),
                  [](const Entry& a, const Entry& b) {
                    if (a.count != b.count) return a.count > b.count;
                    return a.key.Compare(b.key) < 0;
                  });
        if (step.n > 0 && entries.size() > size_t(step.n)) {
          entries.resize(size_t(step.n));
        }
        std::vector<Value> out;
        out.reserve(entries.size() * 2);
        for (Entry& e : entries) {
          out.push_back(std::move(e.key));
          out.push_back(Value(e.count));
        }
        op.AddRows(out.size());
        return out;
      }
      case GremlinStep::Kind::kValueMap: {
        // Terminal-shaped step: emits one value per (traverser, key).
        std::vector<Value> out;
        out.reserve(set.size() * step.props.size());
        for (const Traverser& t : set) {
          if (!t.is_vertex) {
            return Status::InvalidArgument("valueMap() on a value");
          }
          for (const auto& [key, unused] : step.props.entries()) {
            GB_ASSIGN_OR_RETURN(Value v, graph->Property(t.vertex, key));
            out.push_back(std::move(v));
          }
        }
        op.AddRows(out.size());
        return out;
      }
      case GremlinStep::Kind::kAddEdgeTo: {
        GB_ASSIGN_OR_RETURN(
            std::vector<GVertex> targets,
            graph->VerticesByProperty(step.name, step.key, step.value));
        if (targets.empty()) {
          return Status::NotFound("addE target vertex not found");
        }
        for (const Traverser& t : set) {
          if (!t.is_vertex) {
            return Status::InvalidArgument("addE from a value");
          }
          GB_RETURN_IF_ERROR(graph->AddEdge(step.label, t.vertex,
                                            targets.front(), step.props));
        }
        break;
      }
      case GremlinStep::Kind::kDropEdgeTo: {
        GB_ASSIGN_OR_RETURN(
            std::vector<GVertex> targets,
            graph->VerticesByProperty(step.name, step.key, step.value));
        if (targets.empty()) {
          return Status::NotFound("drop target vertex not found");
        }
        for (const Traverser& t : set) {
          if (!t.is_vertex) {
            return Status::InvalidArgument("drop from a value");
          }
          GB_RETURN_IF_ERROR(
              graph->RemoveEdge(step.label, t.vertex, targets.front()));
        }
        break;
      }
      case GremlinStep::Kind::kAddV: {
        GB_ASSIGN_OR_RETURN(GVertex v,
                            graph->AddVertex(step.label, step.props));
        set.clear();
        set.push_back(Traverser{true, v, Value(), {}});
        started = true;
        break;
      }
      case GremlinStep::Kind::kAddE: {
        for (const Traverser& t : set) {
          uint64_t from = t.MarkOf(step.name);
          uint64_t to = t.MarkOf(step.name2);
          if (from == ~uint64_t{0} || to == ~uint64_t{0}) {
            return Status::InvalidArgument("addE endpoints not marked");
          }
          GB_RETURN_IF_ERROR(graph->AddEdge(step.label, GVertex{from},
                                            GVertex{to}, step.props));
        }
        break;
      }
    }
    op.AddRows(set.size());
  }

  // Terminal collection: values pass through; vertices render as their
  // application-level "id" property.
  obs::OpTimer op("collect()");
  std::vector<Value> out;
  out.reserve(set.size());
  for (const Traverser& t : set) {
    if (t.is_vertex) {
      GB_ASSIGN_OR_RETURN(Value id, graph->Property(t.vertex, "id"));
      out.push_back(std::move(id));
    } else {
      out.push_back(t.value);
    }
  }
  op.AddRows(out.size());
  return out;
}

}  // namespace graphbench
