#ifndef GRAPHBENCH_TINKERPOP_TRAVERSAL_H_
#define GRAPHBENCH_TINKERPOP_TRAVERSAL_H_

#include <string>
#include <vector>

#include "tinkerpop/structure.h"
#include "util/result.h"
#include "util/value.h"

namespace graphbench {

/// One Gremlin step. Traversals are pure descriptions (built client-side,
/// serializable to bytecode) executed later against a provider graph.
struct GremlinStep {
  enum class Kind : uint8_t {
    kV = 0,            // label ("" = all) — start step
    kHasIndexed = 1,   // label/key/value — index-backed start step
    kHas = 2,          // key/value — mid-traversal filter
    kOut = 3,          // label
    kIn = 4,           // label
    kBoth = 5,         // label
    kValues = 6,       // key: vertex -> property value
    kDedup = 7,
    kLimit = 8,        // n
    kCount = 9,
    kAs = 10,          // name: mark current vertex
    kWhereNeq = 11,    // name: current vertex != mark
    kShortestPath = 12,  // repeat(both(label).dedup()).until(has(key,value))
    kAddV = 13,        // label + props (update traversals)
    kAddE = 14,        // label + props; endpoints via marks from/to
    kOrderBy = 15,     // key + n (0 asc, 1 desc): order vertices by prop
    kValueMap = 16,    // props holds the keys: emit each key's value
    kAddEdgeTo = 17,   // addE(label).to(V().has(name, key, value))
    kGroupCount = 18,  // key + n: per-vertex counts ordered desc, limit n
    kDropEdgeTo = 19,  // outE(label).where(inV().has(name,key,value)).drop()
  };

  Kind kind;
  std::string label;
  std::string key;
  Value value;
  int64_t n = 0;
  std::string name;        // kAs / kWhereNeq; kAddE: from-mark
  std::string name2;       // kAddE: to-mark
  PropertyMap props;       // kAddV / kAddE
};

/// Fluent builder for the Gremlin step list, mirroring the query shapes in
/// the paper's reference implementation.
class Traversal {
 public:
  Traversal& V(std::string_view label = "") {
    return Push({GremlinStep::Kind::kV, std::string(label)});
  }
  /// g.V().has(label, key, value) — hits the provider's index.
  Traversal& HasIndexed(std::string_view label, std::string_view key,
                        Value value) {
    GremlinStep s{GremlinStep::Kind::kHasIndexed, std::string(label)};
    s.key = std::string(key);
    s.value = std::move(value);
    return Push(std::move(s));
  }
  Traversal& Has(std::string_view key, Value value) {
    GremlinStep s{GremlinStep::Kind::kHas};
    s.key = std::string(key);
    s.value = std::move(value);
    return Push(std::move(s));
  }
  Traversal& Out(std::string_view label) {
    return Push({GremlinStep::Kind::kOut, std::string(label)});
  }
  Traversal& In(std::string_view label) {
    return Push({GremlinStep::Kind::kIn, std::string(label)});
  }
  Traversal& Both(std::string_view label) {
    return Push({GremlinStep::Kind::kBoth, std::string(label)});
  }
  Traversal& Values(std::string_view key) {
    GremlinStep s{GremlinStep::Kind::kValues};
    s.key = std::string(key);
    return Push(std::move(s));
  }
  Traversal& Dedup() { return Push({GremlinStep::Kind::kDedup}); }
  Traversal& Limit(int64_t n) {
    GremlinStep s{GremlinStep::Kind::kLimit};
    s.n = n;
    return Push(std::move(s));
  }
  Traversal& Count() { return Push({GremlinStep::Kind::kCount}); }
  Traversal& As(std::string_view name) {
    GremlinStep s{GremlinStep::Kind::kAs};
    s.name = std::string(name);
    return Push(std::move(s));
  }
  Traversal& WhereNeq(std::string_view name) {
    GremlinStep s{GremlinStep::Kind::kWhereNeq};
    s.name = std::string(name);
    return Push(std::move(s));
  }
  /// repeat(both(edge_label).dedup()).until(has(key, value)) — emits the
  /// BFS depth at which the target was reached, or -1. `max_depth` bounds
  /// runaway traversals.
  Traversal& ShortestPath(std::string_view edge_label, std::string_view key,
                          Value value, int64_t max_depth = 64) {
    GremlinStep s{GremlinStep::Kind::kShortestPath,
                  std::string(edge_label)};
    s.key = std::string(key);
    s.value = std::move(value);
    s.n = max_depth;
    return Push(std::move(s));
  }
  /// groupCount().order(local).by(values, decr): groups vertex traversers
  /// by identity, emits (key-property, count) pairs flattened, ordered by
  /// count descending then key ascending, truncated to `limit` groups
  /// (0 = all).
  Traversal& GroupCount(std::string_view key, int64_t limit = 0) {
    GremlinStep s{GremlinStep::Kind::kGroupCount};
    s.key = std::string(key);
    s.n = limit;
    return Push(std::move(s));
  }
  /// order().by(key, asc|desc) over vertex traversers.
  Traversal& OrderBy(std::string_view key, bool desc) {
    GremlinStep s{GremlinStep::Kind::kOrderBy};
    s.key = std::string(key);
    s.n = desc ? 1 : 0;
    return Push(std::move(s));
  }
  /// valueMap(k1, k2, ...): emits the listed property values of each
  /// vertex traverser, flattened in key order (one Property request per
  /// key per traverser). Callers reshape the flat stream into rows.
  Traversal& ValueMap(const std::vector<std::string>& keys) {
    GremlinStep s{GremlinStep::Kind::kValueMap};
    for (const std::string& k : keys) s.props.Set(k, Value());
    return Push(std::move(s));
  }
  /// addE(label).to(V().has(target_label, key, value)) — creates an edge
  /// from each vertex traverser to the indexed target vertex.
  Traversal& AddEdgeTo(std::string_view edge_label,
                       std::string_view target_label, std::string_view key,
                       Value value, PropertyMap props) {
    GremlinStep s{GremlinStep::Kind::kAddEdgeTo,
                  std::string(edge_label)};
    s.name = std::string(target_label);
    s.key = std::string(key);
    s.value = std::move(value);
    s.props = std::move(props);
    return Push(std::move(s));
  }
  /// bothE(label).where(otherV().has(target_label, key, value)).drop() —
  /// removes one edge between each vertex traverser and the indexed
  /// target vertex, either orientation.
  Traversal& DropEdgeTo(std::string_view edge_label,
                        std::string_view target_label, std::string_view key,
                        Value value) {
    GremlinStep s{GremlinStep::Kind::kDropEdgeTo,
                  std::string(edge_label)};
    s.name = std::string(target_label);
    s.key = std::string(key);
    s.value = std::move(value);
    return Push(std::move(s));
  }
  Traversal& AddV(std::string_view label, PropertyMap props) {
    GremlinStep s{GremlinStep::Kind::kAddV, std::string(label)};
    s.props = std::move(props);
    return Push(std::move(s));
  }
  /// addE between two marked vertices (g.V()...as("a") ... addE).
  Traversal& AddE(std::string_view label, std::string_view from_mark,
                  std::string_view to_mark, PropertyMap props) {
    GremlinStep s{GremlinStep::Kind::kAddE, std::string(label)};
    s.name = std::string(from_mark);
    s.name2 = std::string(to_mark);
    s.props = std::move(props);
    return Push(std::move(s));
  }

  const std::vector<GremlinStep>& steps() const { return steps_; }
  /// Raw step access for the bytecode decoder.
  std::vector<GremlinStep>* mutable_steps() { return &steps_; }

 private:
  Traversal& Push(GremlinStep step) {
    steps_.push_back(std::move(step));
    return *this;
  }
  std::vector<GremlinStep> steps_;
};

/// Executes a traversal against a provider graph, step by step: every
/// Out/In/Both/Has/Values issues per-traverser Structure API calls. The
/// terminal result is the list of produced Values (vertices render as
/// their "id" property when the traversal ends on vertices).
Result<std::vector<Value>> ExecuteTraversal(GremlinGraph* graph,
                                            const Traversal& traversal);

}  // namespace graphbench

#endif  // GRAPHBENCH_TINKERPOP_TRAVERSAL_H_
