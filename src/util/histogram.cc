#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

namespace graphbench {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

Histogram::Histogram(Histogram&& other) noexcept : buckets_(kNumBuckets, 0) {
  *this = std::move(other);
}

Histogram& Histogram::operator=(Histogram&& other) noexcept {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> lock(other.mu_);
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
  buckets_ = std::move(other.buckets_);
  other.buckets_.assign(kNumBuckets, 0);
  other.count_ = 0;
  other.sum_ = 0;
  other.min_ = ~0ull;
  other.max_ = 0;
  return *this;
}

// Buckets: 64 linear buckets of width 1 up to 64us, then each group of 16
// buckets doubles the width. Gives <7% relative error at high latencies.
size_t Histogram::BucketFor(uint64_t v) {
  if (v < 64) return size_t(v);
  size_t b = 64;
  uint64_t base = 64, width = 4;
  while (b + 16 < kNumBuckets) {
    if (v < base + width * 16) return b + size_t((v - base) / width);
    base += width * 16;
    width *= 2;
    b += 16;
  }
  return kNumBuckets - 1;
}

uint64_t Histogram::BucketUpper(size_t target) {
  if (target < 64) return target + 1;
  size_t b = 64;
  uint64_t base = 64, width = 4;
  while (b + 16 < kNumBuckets) {
    if (target < b + 16) return base + width * (target - b + 1);
    base += width * 16;
    width *= 2;
    b += 16;
  }
  return base;
}

void Histogram::Add(uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += micros;
  min_ = std::min(min_, micros);
  max_ = std::max(max_, micros);
  ++buckets_[BucketFor(micros)];
}

void Histogram::Merge(const Histogram& other) {
  std::lock_guard<std::mutex> l1(mu_);
  std::lock_guard<std::mutex> l2(other.mu_);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : double(sum_) / double(count_);
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  uint64_t threshold = uint64_t(double(count_) * p / 100.0 + 0.5);
  if (threshold == 0) threshold = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= threshold) {
      uint64_t upper = BucketUpper(b);
      return std::min<double>(double(upper), double(max_));
    }
  }
  return double(max_);
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "cnt=%llu mean=%.1fus p50=%.0f p95=%.0f p99=%.0f max=%lluus",
                (unsigned long long)count(), mean(), Percentile(50),
                Percentile(95), Percentile(99), (unsigned long long)max());
  return buf;
}

}  // namespace graphbench
