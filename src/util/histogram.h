#ifndef GRAPHBENCH_UTIL_HISTOGRAM_H_
#define GRAPHBENCH_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace graphbench {

/// Log-bucketed latency histogram (RocksDB-style). Records values in
/// microseconds; reports count/mean/percentiles. Add() is thread-safe.
class Histogram {
 public:
  Histogram();

  /// Movable so result structs carrying histograms can be returned by
  /// value. Not thread-safe with respect to concurrent Add() on `other`.
  Histogram(Histogram&& other) noexcept;
  Histogram& operator=(Histogram&& other) noexcept;

  void Add(uint64_t micros);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double mean() const;
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  /// p in (0, 100]; interpolates within the containing bucket.
  double Percentile(double p) const;

  /// One-line summary: "cnt=... mean=...us p50=... p95=... p99=... max=...".
  std::string ToString() const;

 private:
  static constexpr size_t kNumBuckets = 256;
  // Bucket upper bounds grow ~exponentially; index via BucketFor().
  static size_t BucketFor(uint64_t v);
  static uint64_t BucketUpper(size_t b);

  mutable std::mutex mu_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_UTIL_HISTOGRAM_H_
