#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace graphbench {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = d;
  return j;
}

Json Json::Int(int64_t i) { return Number(double(i)); }

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

void Json::Append(Json value) { array_.push_back(std::move(value)); }

void Json::Set(std::string key, Json value) {
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const Json& Json::Get(std::string_view key) const {
  static const Json kNull;
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return kNull;
}

bool Json::Has(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (uint8_t(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void SerializeTo(const Json& j, std::string* out);

}  // namespace

std::string Json::Serialize() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

namespace {

void SerializeTo(const Json& j, std::string* out) {
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += j.as_bool() ? "true" : "false";
      break;
    case Json::Type::kNumber: {
      double d = j.as_number();
      if (d == std::floor(d) && std::abs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", (long long)d);
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      }
      break;
    }
    case Json::Type::kString:
      EscapeTo(j.as_string(), out);
      break;
    case Json::Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < j.size(); ++i) {
        if (i) out->push_back(',');
        SerializeTo(j.at(i), out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : j.object_pairs()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeTo(key, out);
        out->push_back(':');
        SerializeTo(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    GB_ASSIGN_OR_RETURN(Json j, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing JSON content");
    }
    return j;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(uint8_t(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      GB_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (c == 't' || c == 'f') {
      if (text_.substr(pos_, 4) == "true") {
        pos_ += 4;
        return Json::Bool(true);
      }
      if (text_.substr(pos_, 5) == "false") {
        pos_ += 5;
        return Json::Bool(false);
      }
      return Status::InvalidArgument("bad JSON literal");
    }
    if (c == 'n') {
      if (text_.substr(pos_, 4) == "null") {
        pos_ += 4;
        return Json::Null();
      }
      return Status::InvalidArgument("bad JSON literal");
    }
    // Number.
    size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(uint8_t(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("bad JSON number");
    return Json::Number(std::stod(std::string(text_.substr(
        start, pos_ - start))));
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Status::InvalidArgument("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("bad unicode escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return Status::InvalidArgument("bad unicode escape");
            }
            // Only BMP codepoints below 0x80 are emitted as-is; others
            // get UTF-8 encoded (payloads here are ASCII in practice).
            if (code < 0x80) {
              out.push_back(char(code));
            } else if (code < 0x800) {
              out.push_back(char(0xC0 | (code >> 6)));
              out.push_back(char(0x80 | (code & 0x3F)));
            } else {
              out.push_back(char(0xE0 | (code >> 12)));
              out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(char(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Status::InvalidArgument("bad escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<Json> ParseObject() {
    if (!Consume('{')) return Status::InvalidArgument("expected object");
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      GB_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Status::InvalidArgument("expected ':'");
      GB_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Status::InvalidArgument("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray() {
    if (!Consume('[')) return Status::InvalidArgument("expected array");
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      GB_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Append(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Status::InvalidArgument("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<Json> Json::Parse(std::string_view text) {
  JsonParser parser(text);
  return parser.Parse();
}

}  // namespace graphbench
