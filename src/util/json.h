#ifndef GRAPHBENCH_UTIL_JSON_H_
#define GRAPHBENCH_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace graphbench {

/// Minimal JSON document model + parser/serializer. Used by the GraphSON
/// analog wire format of the Gremlin Server (typed JSON is what the real
/// server speaks, and its cost is part of the TinkerPop overhead the paper
/// measures).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double d);
  static Json Int(int64_t i);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return int64_t(number_); }
  const std::string& as_string() const { return string_; }

  /// Array access.
  void Append(Json value);
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }
  Json& at(size_t i) { return array_[i]; }

  /// Object access. Get returns null Json when absent.
  void Set(std::string key, Json value);
  const Json& Get(std::string_view key) const;
  bool Has(std::string_view key) const;
  /// Object entries in insertion order.
  const std::vector<std::pair<std::string, Json>>& object_pairs() const {
    return object_;
  }

  /// Compact serialization (no whitespace).
  std::string Serialize() const;

  /// Parses a complete JSON document.
  static Result<Json> Parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_UTIL_JSON_H_
