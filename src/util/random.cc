#include "util/random.h"

#include <cmath>

namespace graphbench {

Rng::Rng(uint64_t seed) {
  // SplitMix64 to expand the seed into two non-zero state words.
  auto splitmix = [](uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s0_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::Uniform(uint64_t n) { return Next() % n; }

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + int64_t(Uniform(uint64_t(hi - lo + 1)));
}

double Rng::NextDouble() {
  return double(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n_, theta_);
  double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t rank =
      uint64_t(double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

PowerLawDegree::PowerLawDegree(uint32_t k_min, uint32_t k_max, double gamma,
                               uint64_t seed)
    : k_min_(k_min), k_max_(k_max), gamma_(gamma), rng_(seed) {}

uint32_t PowerLawDegree::Next() {
  // Inverse-CDF sampling of the continuous power law, rounded down.
  double u = rng_.NextDouble();
  double a = std::pow(double(k_min_), 1.0 - gamma_);
  double b = std::pow(double(k_max_) + 1.0, 1.0 - gamma_);
  double k = std::pow(a + u * (b - a), 1.0 / (1.0 - gamma_));
  uint32_t out = uint32_t(k);
  if (out < k_min_) out = k_min_;
  if (out > k_max_) out = k_max_;
  return out;
}

}  // namespace graphbench
