#ifndef GRAPHBENCH_UTIL_RANDOM_H_
#define GRAPHBENCH_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace graphbench {

/// Deterministic xorshift128+ generator. Used everywhere instead of
/// std::mt19937 so datasets and workloads are reproducible across
/// platforms and standard-library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5bd1e995u);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed generator over {0, ..., n-1} with skew `theta`
/// (theta = 0 is uniform; social-network popularity uses ~0.8-1.0).
/// Uses the rejection-inversion-free cumulative method with precomputed
/// normalization, matching the classic YCSB generator.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Next Zipf-distributed rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

/// Samples discrete power-law degrees: P(k) ~ k^-gamma for k in
/// [k_min, k_max]. Social "knows" degree distributions use gamma ~ 2-3.
class PowerLawDegree {
 public:
  PowerLawDegree(uint32_t k_min, uint32_t k_max, double gamma,
                 uint64_t seed = 7);

  uint32_t Next();

 private:
  uint32_t k_min_;
  uint32_t k_max_;
  double gamma_;
  Rng rng_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_UTIL_RANDOM_H_
