#ifndef GRAPHBENCH_UTIL_RESULT_H_
#define GRAPHBENCH_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace graphbench {

/// A Status plus a value of type T on success. The value may only be
/// accessed when ok(); accessing the value of a failed Result aborts in
/// debug builds and is undefined in release builds (same contract as
/// arrow::Result).
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` and `return Status::NotFound();` both work
  /// in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a failed Status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when the Result failed.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace graphbench

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, otherwise propagates the Status out of the enclosing function.
#define GB_ASSIGN_OR_RETURN(lhs, expr)              \
  auto GB_CONCAT_(_gb_result_, __LINE__) = (expr);  \
  if (!GB_CONCAT_(_gb_result_, __LINE__).ok())      \
    return GB_CONCAT_(_gb_result_, __LINE__).status(); \
  lhs = std::move(GB_CONCAT_(_gb_result_, __LINE__)).value()

#define GB_CONCAT_(a, b) GB_CONCAT_IMPL_(a, b)
#define GB_CONCAT_IMPL_(a, b) a##b

#endif  // GRAPHBENCH_UTIL_RESULT_H_
