#ifndef GRAPHBENCH_UTIL_STATUS_H_
#define GRAPHBENCH_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace graphbench {

/// Outcome of an operation that can fail. Library code reports errors by
/// returning Status (or Result<T>) rather than throwing; this mirrors the
/// RocksDB/Arrow convention and keeps engine hot paths exception-free.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kAlreadyExists,
    kInvalidArgument,
    kCorruption,
    kNotSupported,
    kBusy,
    kAborted,
    kTimedOut,
    kResourceExhausted,
    kInternal,
  };

  /// Default-constructed Status is OK.
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg = "") {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(Code::kBusy, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(Code::kAborted, msg);
  }
  static Status TimedOut(std::string_view msg = "") {
    return Status(Code::kTimedOut, msg);
  }
  static Status ResourceExhausted(std::string_view msg = "") {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg = "") {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>", for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace graphbench

/// Propagates a non-OK Status out of the enclosing function.
#define GB_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::graphbench::Status _gb_status = (expr);       \
    if (!_gb_status.ok()) return _gb_status;        \
  } while (0)

#endif  // GRAPHBENCH_UTIL_STATUS_H_
