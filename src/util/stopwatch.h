#ifndef GRAPHBENCH_UTIL_STOPWATCH_H_
#define GRAPHBENCH_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace graphbench {

/// Monotonic wall-clock timer for latency measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  uint64_t ElapsedMicros() const {
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - start_)
                        .count());
  }

  double ElapsedMillis() const { return double(ElapsedMicros()) / 1000.0; }
  double ElapsedSeconds() const { return double(ElapsedMicros()) / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic microsecond timestamp (process-relative).
inline uint64_t NowMicros() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

}  // namespace graphbench

#endif  // GRAPHBENCH_UTIL_STOPWATCH_H_
