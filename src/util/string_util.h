#ifndef GRAPHBENCH_UTIL_STRING_UTIL_H_
#define GRAPHBENCH_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace graphbench {

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace graphbench

#endif  // GRAPHBENCH_UTIL_STRING_UTIL_H_
