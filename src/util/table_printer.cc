#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace graphbench {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += sep;
  if (!header_.empty()) {
    out += render_row(header_);
    out += sep;
  }
  for (const auto& r : rows_) out += render_row(r);
  out += sep;
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += "\"";
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += ",";
      out += escape(row[i]);
    }
    out += "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace graphbench
