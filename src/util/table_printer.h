#ifndef GRAPHBENCH_UTIL_TABLE_PRINTER_H_
#define GRAPHBENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace graphbench {

/// Renders benchmark results as an aligned ASCII table (the layout the
/// paper's Tables 1-4 use) and optionally as CSV for post-processing.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Aligned ASCII rendering, including the title.
  std::string ToString() const;

  /// RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string ToCsv() const;

  /// Convenience: prints ToString() to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_UTIL_TABLE_PRINTER_H_
