#include "util/thread_pool.h"

namespace graphbench {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    if (max_queue_ != 0 && queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace graphbench
