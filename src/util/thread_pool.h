#ifndef GRAPHBENCH_UTIL_THREAD_POOL_H_
#define GRAPHBENCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace graphbench {

/// Fixed-size worker pool with an optionally bounded FIFO queue. Used by the
/// Gremlin Server analog (bounded queue, so floods of complex requests make
/// submissions fail like the real server, §4.4) and by benchmark drivers.
class ThreadPool {
 public:
  /// `max_queue` of 0 means unbounded.
  explicit ThreadPool(size_t num_threads, size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; returns false if the queue is full or the pool is
  /// shutting down (the task is dropped).
  bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Drain();

  /// Stops accepting work, drains the queue, joins workers.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t max_queue_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_UTIL_THREAD_POOL_H_
