#include "util/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace graphbench {

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return as_bool() ? "true" : "false";
    case Type::kInt:
      return std::to_string(as_int());
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case Type::kString:
      return as_string();
  }
  return "";
}

int Value::Compare(const Value& other) const {
  // Numeric types compare by value so that Int(2) == Double(2.0).
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = as_int(), b = other.as_int();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = numeric(), b = other.numeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return type() < other.type() ? -1 : 1;
  }
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return int(as_bool()) - int(other.as_bool());
    case Type::kString:
      return as_string().compare(other.as_string());
    default:
      return 0;  // Numeric cases handled above.
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case Type::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case Type::kBool:
      return as_bool() ? 0x12345 : 0x54321;
    case Type::kInt:
      return std::hash<int64_t>()(as_int());
    case Type::kDouble: {
      double d = as_double();
      // Integral doubles hash like the equivalent Int (Compare-consistent).
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case Type::kString:
      return std::hash<std::string>()(as_string());
  }
  return 0;
}

}  // namespace graphbench
