#ifndef GRAPHBENCH_UTIL_VALUE_H_
#define GRAPHBENCH_UTIL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace graphbench {

/// Dynamically-typed scalar used for vertex/edge properties, relational
/// tuples, RDF literals, and query results. Ordering is defined within a
/// type; across types, values order by type tag (Null < Bool < Int < Double
/// < String) except Int/Double which compare numerically.
class Value {
 public:
  enum class Type : uint8_t {
    kNull = 0,
    kBool = 1,
    kInt = 2,
    kDouble = 3,
    kString = 4,
  };

  Value() : rep_(std::monostate{}) {}
  Value(bool b) : rep_(b) {}                  // NOLINT(runtime/explicit)
  Value(int64_t i) : rep_(i) {}               // NOLINT(runtime/explicit)
  Value(int i) : rep_(int64_t{i}) {}          // NOLINT(runtime/explicit)
  Value(double d) : rep_(d) {}                // NOLINT(runtime/explicit)
  Value(std::string s) : rep_(std::move(s)) {}  // NOLINT(runtime/explicit)
  Value(std::string_view s)                   // NOLINT(runtime/explicit)
      : rep_(std::string(s)) {}
  Value(const char* s) : rep_(std::string(s)) {}  // NOLINT(runtime/explicit)

  Type type() const { return static_cast<Type>(rep_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_string() const { return type() == Type::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Accessors require the matching type; checked by std::get.
  bool as_bool() const { return std::get<bool>(rep_); }
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric value as double regardless of Int/Double representation.
  /// Requires is_numeric().
  double numeric() const { return is_int() ? double(as_int()) : as_double(); }

  /// Human-readable rendering ("null", "true", "42", "3.5", raw string).
  std::string ToString() const;

  /// Total ordering used by ORDER BY and index keys.
  int Compare(const Value& other) const;

  /// Stable hash for hash joins and hash indexes. Int and Double holding
  /// the same integral value hash identically (consistent with Compare).
  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

/// Hasher for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// A result row: a vector of named columns is carried separately.
using Row = std::vector<Value>;

}  // namespace graphbench

#endif  // GRAPHBENCH_UTIL_VALUE_H_
