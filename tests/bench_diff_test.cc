// Unit tests for the bench_diff report comparator.

#include "benchlib/bench_diff.h"

#include <gtest/gtest.h>

#include "obs/report.h"
#include "util/histogram.h"

namespace graphbench {
namespace benchlib {
namespace {

Json SystemEntry(const char* name, double two_hop_ms, double p99_us) {
  Json entry = Json::Object();
  entry.Set("system", Json::Str(name));
  entry.Set("two_hop_ms", Json::Number(two_hop_ms));
  Json hist = Json::Object();
  hist.Set("count", Json::Int(100));
  hist.Set("mean_us", Json::Number(p99_us / 2));
  hist.Set("min_us", Json::Int(1));
  hist.Set("max_us", Json::Int(int64_t(p99_us * 2)));
  hist.Set("p50_us", Json::Number(p99_us / 2));
  hist.Set("p95_us", Json::Number(p99_us * 0.9));
  hist.Set("p99_us", Json::Number(p99_us));
  entry.Set("read_latency", std::move(hist));
  return entry;
}

Json Report(const char* bench, Json systems) {
  Json root = Json::Object();
  root.Set("schema_version", Json::Int(2));
  root.Set("bench", Json::Str(bench));
  root.Set("systems", std::move(systems));
  return root;
}

TEST(BenchDiffTest, FlagsRegressionBeyondThreshold) {
  Json before_systems = Json::Array();
  before_systems.Append(SystemEntry("neo4j", 10.0, 5000));
  Json after_systems = Json::Array();
  after_systems.Append(SystemEntry("neo4j", 13.0, 5000));  // +30%

  auto diff = DiffReports(Report("t2", std::move(before_systems)),
                          Report("t2", std::move(after_systems)), 15.0);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->HasRegression());
  const MetricDelta* two_hop = nullptr;
  for (const auto& d : diff->deltas) {
    if (d.metric == "two_hop_ms") two_hop = &d;
  }
  ASSERT_NE(two_hop, nullptr);
  EXPECT_TRUE(two_hop->regressed);
  EXPECT_NEAR(two_hop->delta_pct, 30.0, 1e-9);
  // The histogram latencies did not move.
  for (const auto& d : diff->deltas) {
    if (d.metric != "two_hop_ms") EXPECT_FALSE(d.regressed) << d.metric;
  }
}

TEST(BenchDiffTest, ImprovementAndSmallDriftPass) {
  Json before_systems = Json::Array();
  before_systems.Append(SystemEntry("neo4j", 10.0, 5000));
  Json after_systems = Json::Array();
  after_systems.Append(SystemEntry("neo4j", 11.0, 2500));  // +10%, -50%

  auto diff = DiffReports(Report("t2", std::move(before_systems)),
                          Report("t2", std::move(after_systems)), 15.0);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->HasRegression());
}

TEST(BenchDiffTest, ComparesHistogramLatencyFieldsOnly) {
  Json before_systems = Json::Array();
  before_systems.Append(SystemEntry("neo4j", 10.0, 5000));
  Json after_systems = Json::Array();
  // max_us doubles (ignored); p99 doubles (flagged).
  after_systems.Append(SystemEntry("neo4j", 10.0, 10000));

  auto diff = DiffReports(Report("t2", std::move(before_systems)),
                          Report("t2", std::move(after_systems)), 15.0);
  ASSERT_TRUE(diff.ok());
  bool saw_p99 = false;
  for (const auto& d : diff->deltas) {
    EXPECT_EQ(d.metric.find("max_us"), std::string::npos);
    EXPECT_EQ(d.metric.find("min_us"), std::string::npos);
    EXPECT_EQ(d.metric.find("count"), std::string::npos);
    if (d.metric == "read_latency.p99_us") {
      saw_p99 = true;
      EXPECT_TRUE(d.regressed);
    }
  }
  EXPECT_TRUE(saw_p99);
}

Json ThroughputEntry(const char* name, double reads_per_second,
                     double writes_per_second) {
  Json entry = Json::Object();
  entry.Set("system", Json::Str(name));
  entry.Set("reads_per_second", Json::Number(reads_per_second));
  entry.Set("writes_per_second", Json::Number(writes_per_second));
  return entry;
}

TEST(BenchDiffTest, FlagsThroughputDropBeyondThreshold) {
  Json before_systems = Json::Array();
  before_systems.Append(ThroughputEntry("neo4j", 1000.0, 200.0));
  Json after_systems = Json::Array();
  // Reads drop 30% (regression); writes grow 50% (improvement, not one).
  after_systems.Append(ThroughputEntry("neo4j", 700.0, 300.0));

  auto diff = DiffReports(Report("f3", std::move(before_systems)),
                          Report("f3", std::move(after_systems)), 15.0);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->HasRegression());
  const MetricDelta* reads = nullptr;
  const MetricDelta* writes = nullptr;
  for (const auto& d : diff->deltas) {
    if (d.metric == "reads_per_second") reads = &d;
    if (d.metric == "writes_per_second") writes = &d;
  }
  ASSERT_NE(reads, nullptr);
  EXPECT_TRUE(reads->regressed);
  EXPECT_NEAR(reads->delta_pct, -30.0, 1e-9);
  ASSERT_NE(writes, nullptr);
  EXPECT_FALSE(writes->regressed);
}

TEST(BenchDiffTest, ThroughputDriftWithinThresholdPasses) {
  Json before_systems = Json::Array();
  before_systems.Append(ThroughputEntry("neo4j", 1000.0, 200.0));
  Json after_systems = Json::Array();
  after_systems.Append(ThroughputEntry("neo4j", 900.0, 195.0));  // -10%, -2.5%

  auto diff = DiffReports(Report("f3", std::move(before_systems)),
                          Report("f3", std::move(after_systems)), 15.0);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->HasRegression());
}

TEST(BenchDiffTest, AcceptsShortPerSecSuffix) {
  Json before_systems = Json::Array();
  Json b = Json::Object();
  b.Set("system", Json::Str("neo4j"));
  b.Set("reads_per_sec", Json::Number(1000.0));
  before_systems.Append(std::move(b));
  Json after_systems = Json::Array();
  Json a = Json::Object();
  a.Set("system", Json::Str("neo4j"));
  a.Set("reads_per_sec", Json::Number(500.0));
  after_systems.Append(std::move(a));

  auto diff = DiffReports(Report("f3", std::move(before_systems)),
                          Report("f3", std::move(after_systems)), 15.0);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->deltas.size(), 1u);
  EXPECT_EQ(diff->deltas[0].metric, "reads_per_sec");
  EXPECT_TRUE(diff->deltas[0].regressed);
}

TEST(BenchDiffTest, SkipsNonPositiveBaselines) {
  Json before_systems = Json::Array();
  before_systems.Append(SystemEntry("neo4j", -1.0, 5000));  // failed query
  Json after_systems = Json::Array();
  after_systems.Append(SystemEntry("neo4j", 100.0, 5000));

  auto diff = DiffReports(Report("t2", std::move(before_systems)),
                          Report("t2", std::move(after_systems)), 15.0);
  ASSERT_TRUE(diff.ok());
  for (const auto& d : diff->deltas) {
    EXPECT_NE(d.metric, "two_hop_ms");
  }
}

TEST(BenchDiffTest, ReportsSystemsPresentInOnlyOneReport) {
  Json before_systems = Json::Array();
  before_systems.Append(SystemEntry("neo4j", 10.0, 5000));
  before_systems.Append(SystemEntry("titan-c", 20.0, 9000));
  Json after_systems = Json::Array();
  after_systems.Append(SystemEntry("neo4j", 10.0, 5000));
  after_systems.Append(SystemEntry("sqlg", 30.0, 9000));

  auto diff = DiffReports(Report("t2", std::move(before_systems)),
                          Report("t2", std::move(after_systems)), 15.0);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->only_in_before.size(), 1u);
  EXPECT_EQ(diff->only_in_before[0], "titan-c");
  ASSERT_EQ(diff->only_in_after.size(), 1u);
  EXPECT_EQ(diff->only_in_after[0], "sqlg");
}

TEST(BenchDiffTest, RejectsMismatchedBenchNames) {
  auto diff = DiffReports(Report("t2", Json::Array()),
                          Report("t3", Json::Array()), 15.0);
  EXPECT_FALSE(diff.ok());
}

TEST(BenchDiffTest, RejectsReportsWithoutSystems) {
  Json no_systems = Json::Object();
  no_systems.Set("bench", Json::Str("t2"));
  auto diff =
      DiffReports(no_systems, Report("t2", Json::Array()), 15.0);
  EXPECT_FALSE(diff.ok());
}

TEST(BenchDiffTest, RoundTripsThroughRealSerialization) {
  obs::BenchReport report("roundtrip", "tiny");
  Histogram h;
  for (uint64_t us = 10; us <= 100; us += 10) h.Add(us);
  Json entry = Json::Object();
  entry.Set("two_hop_ms", Json::Number(1.25));
  entry.Set("read_latency", obs::HistogramJson(h));
  report.AddSystem("neo4j-cypher", std::move(entry));

  auto parsed = Json::Parse(report.ToJson().Serialize());
  ASSERT_TRUE(parsed.ok());
  auto diff = DiffReports(*parsed, *parsed, 15.0);
  ASSERT_TRUE(diff.ok());
  // two_hop_ms + mean/p50/p95/p99.
  EXPECT_EQ(diff->deltas.size(), 5u);
  EXPECT_FALSE(diff->HasRegression());
  for (const auto& d : diff->deltas) {
    EXPECT_EQ(d.delta_pct, 0.0) << d.metric;
  }
  std::string rendered = FormatDiff(*diff, 15.0);
  EXPECT_NE(rendered.find("two_hop_ms"), std::string::npos);
  EXPECT_NE(rendered.find("0 regressed"), std::string::npos);
}

}  // namespace
}  // namespace benchlib
}  // namespace graphbench
