#include "benchlib/read_latency.h"

#include <gtest/gtest.h>

namespace graphbench {
namespace {

TEST(BenchlibTest, ReadLatencyTableCoversAllSystemsAndQueries) {
  snb::DatagenOptions tiny;
  tiny.num_persons = 50;
  tiny.seed = 12;
  benchlib::ReadLatencyOptions options;
  options.repetitions = 3;
  std::string table = benchlib::RunReadLatencyTable(
      tiny, options, "smoke test table");

  for (const char* system :
       {"Neo4j (Cypher)", "Neo4j (Gremlin)", "Titan-C (Gremlin)",
        "Titan-B (Gremlin)", "Sqlg (Gremlin)", "Postgres (SQL)",
        "Virtuoso (SQL)", "Virtuoso (SPARQL)"}) {
    EXPECT_NE(table.find(system), std::string::npos) << system;
  }
  for (const char* query :
       {"Point lookup", "1-hop", "2-hop", "Shortest path"}) {
    EXPECT_NE(table.find(query), std::string::npos) << query;
  }
  EXPECT_NE(table.find("vs best"), std::string::npos);
  // No load/run failures leaked into the table.
  EXPECT_EQ(table.find("error"), std::string::npos);
  EXPECT_EQ(table.find("-1"), std::string::npos);
}

}  // namespace
}  // namespace graphbench
