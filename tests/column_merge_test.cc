// Tests for the column store's write-optimized delta + merge machinery
// (the Virtuoso write-path model behind the §4.3 row-vs-column gap).

#include <gtest/gtest.h>

#include "storage/column_table.h"

namespace graphbench {
namespace {

TableSchema TwoColSchema() {
  return TableSchema("t", {{"id", Value::Type::kInt},
                           {"name", Value::Type::kString}});
}

TEST(ColumnMergeTest, DeltaRowsVisibleBeforeMerge) {
  ColumnTable t(TwoColSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("n" + std::to_string(i))}).ok());
  }
  EXPECT_EQ(t.merges(), 0u);  // below the merge threshold
  Row row;
  ASSERT_TRUE(t.Get(7, &row).ok());
  EXPECT_EQ(row[1].as_string(), "n7");
  Value v;
  ASSERT_TRUE(t.GetColumn(3, 0, &v).ok());
  EXPECT_EQ(v.as_int(), 3);
}

TEST(ColumnMergeTest, MergeTriggersAtThresholdAndPreservesData) {
  ColumnTable t(TwoColSchema());
  const int n = int(ColumnTable::kDeltaMergeRows) * 3 + 17;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("x")}).ok());
  }
  EXPECT_EQ(t.merges(), 3u);
  EXPECT_EQ(t.row_count(), uint64_t(n));
  // Rows on both sides of the merged/delta boundary read correctly.
  Value v;
  ASSERT_TRUE(t.GetColumn(RowId(ColumnTable::kDeltaMergeRows - 1), 0, &v)
                  .ok());
  EXPECT_EQ(v.as_int(), int64_t(ColumnTable::kDeltaMergeRows) - 1);
  ASSERT_TRUE(t.GetColumn(RowId(n - 1), 0, &v).ok());
  EXPECT_EQ(v.as_int(), n - 1);
}

TEST(ColumnMergeTest, UpdateAndDeleteAcrossRegions) {
  ColumnTable t(TwoColSchema());
  const int n = int(ColumnTable::kDeltaMergeRows) + 5;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("x")}).ok());
  }
  // Row 2 is merged; row n-1 is in the delta.
  ASSERT_TRUE(t.Update(2, {Value(200), Value("merged")}).ok());
  ASSERT_TRUE(t.Update(RowId(n - 1), {Value(900), Value("delta")}).ok());
  Row row;
  ASSERT_TRUE(t.Get(2, &row).ok());
  EXPECT_EQ(row[1].as_string(), "merged");
  ASSERT_TRUE(t.Get(RowId(n - 1), &row).ok());
  EXPECT_EQ(row[1].as_string(), "delta");

  ASSERT_TRUE(t.Delete(2).ok());
  ASSERT_TRUE(t.Delete(RowId(n - 1)).ok());
  EXPECT_TRUE(t.Get(2, &row).IsNotFound());
  EXPECT_TRUE(t.Get(RowId(n - 1), &row).IsNotFound());
  EXPECT_EQ(t.row_count(), uint64_t(n - 2));
}

TEST(ColumnMergeTest, ScanColumnSpansBothRegions) {
  ColumnTable t(TwoColSchema());
  const int n = int(ColumnTable::kDeltaMergeRows) + 3;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("x")}).ok());
  }
  std::vector<Value> values;
  std::vector<RowId> ids;
  t.ScanColumn(0, &values, &ids);
  ASSERT_EQ(values.size(), size_t(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(values[size_t(i)].as_int(), i);
    EXPECT_EQ(ids[size_t(i)], RowId(i));
  }
}

TEST(ColumnMergeTest, ScanIteratorSeesDeltaRows) {
  ColumnTable t(TwoColSchema());
  const int n = int(ColumnTable::kDeltaMergeRows) + 2;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("x")}).ok());
  }
  int count = 0;
  for (auto it = t.NewScanIterator(); it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, n);
}

}  // namespace
}  // namespace graphbench
