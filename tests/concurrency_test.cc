// Concurrency stress tests for the pieces the interactive workload (§4.3)
// and the concurrent-loading experiment (Appendix A) rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engines/relational/database.h"
#include "engines/titan/titan_graph.h"
#include "kv/btree_kv.h"
#include "kv/lsm_kv.h"
#include "mq/broker.h"

namespace graphbench {
namespace {

TEST(ConcurrencyTest, LsmConcurrentWritersLoseNothing) {
  LsmOptions options;
  options.memtable_bytes = 4096;  // force flush/compaction under load
  options.max_runs = 3;
  LsmKv kv(options);
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&kv, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(kv.Put(key, "v").ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(kv.Count(), uint64_t(kThreads * kPerThread));
  std::string v;
  EXPECT_TRUE(kv.Get("t2-1999", &v).ok());
}

TEST(ConcurrencyTest, BTreeReadersDuringSplits) {
  BTreeKv kv(/*fanout=*/8);
  std::atomic<bool> stop{false};
  std::atomic<int> read_failures{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(kv.Put("base" + std::to_string(i), "v").ok());
  }
  std::thread reader([&] {
    std::string v;
    while (!stop) {
      if (!kv.Get("base50", &v).ok() || v != "v") ++read_failures;
    }
  });
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(kv.Put("grow" + std::to_string(i), "w").ok());
  }
  stop = true;
  reader.join();
  EXPECT_EQ(read_failures.load(), 0);
}

TEST(ConcurrencyTest, TitanUniquenessUnderRacingInserts) {
  // Two threads race to create the same person id over the isolation-free
  // LSM backend; the lock manager must let exactly one win (the Titan
  // behaviour §4.3 discusses).
  for (int round = 0; round < 20; ++round) {
    TitanGraph titan(std::make_unique<LsmKv>());
    ASSERT_TRUE(titan.RegisterUniqueIndex("Person", "id").ok());
    std::atomic<int> created{0}, rejected{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {
        auto r = titan.AddVertex("Person", {{"id", Value(7)}});
        if (r.ok()) ++created;
        else if (r.status().IsAlreadyExists()) ++rejected;
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(created.load(), 1) << "round " << round;
    EXPECT_EQ(rejected.load(), 1) << "round " << round;
  }
}

TEST(ConcurrencyTest, DatabaseReadersWithConcurrentInserts) {
  Database db(StorageMode::kRow);
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"id", Value::Type::kInt},
                                               {"v", Value::Type::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateIndex("t", "id", true).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.InsertRow("t", {Value(i), Value(i * 2)}).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread reader([&] {
    while (!stop) {
      auto r = db.Execute("SELECT v FROM t WHERE id = 250");
      if (!r.ok() || r->rows.size() != 1 || r->rows[0][0].as_int() != 500) {
        ++bad;
      }
    }
  });
  for (int i = 500; i < 4000; ++i) {
    ASSERT_TRUE(db.InsertRow("t", {Value(i), Value(i * 2)}).ok());
  }
  stop = true;
  reader.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrencyTest, MqManyProducersOneConsumer) {
  mq::Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", 4).ok());
  constexpr int kProducers = 4, kEach = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&broker, p] {
      mq::Producer producer(&broker, "t");
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(producer.Send("k" + std::to_string(p), "m").ok());
      }
    });
  }
  mq::Consumer consumer(&broker, "t");
  size_t got = 0;
  // Consume concurrently with production until all arrive.
  while (got < size_t(kProducers * kEach)) {
    auto batch = consumer.Poll(64);
    ASSERT_TRUE(batch.ok());
    got += batch->size();
    if (batch->empty()) std::this_thread::yield();
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(got, size_t(kProducers * kEach));
  EXPECT_TRUE(consumer.CaughtUp());
}

}  // namespace
}  // namespace graphbench
