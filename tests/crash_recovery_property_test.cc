// Kill-and-replay property test for the durable storage substrate
// (ISSUE: the --durable acceptance gate). Each trial runs a random op
// stream against PagedBTreeKv over the crash-simulating MemFileSystem —
// optionally through a FaultFileSystem injecting scheduled fsync/write
// failures — then "kills the machine" (MemFileSystem::Crash resolves
// every unsynced write as kept, torn at a 512-byte sector, or dropped),
// reopens, and replays the WAL.
//
// The recovered store must equal the in-memory oracle after some PREFIX
// of the logged op history:
//   - no lost acks      — every op acknowledged under the mode's
//                         durability floor is in the prefix,
//   - no phantom writes — nothing outside the history appears, and no op
//                         applies half (one op = one WAL record),
//   - torn tail discarded — a partially persisted tail record never
//                         resurfaces as data.
//
// Depth: a handful of trials per mode in ctest (smoke); the CI sanitize
// job sweeps the full fault schedule with GRAPHBENCH_CRASH_DEPTH=full.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kv/paged_btree_kv.h"
#include "storage/os_file.h"
#include "util/random.h"

namespace graphbench {
namespace {

using storage::FaultFileSystem;
using storage::FaultOptions;
using storage::MemFileSystem;
using storage::PagerOptions;

bool FullDepth() {
  const char* depth = std::getenv("GRAPHBENCH_CRASH_DEPTH");
  return depth != nullptr && std::string(depth) == "full";
}

struct Op {
  std::string key;
  std::optional<std::string> value;  // nullopt = delete
};

using State = std::map<std::string, std::string>;

void ApplyOp(State* state, const Op& op) {
  if (op.value.has_value()) {
    (*state)[op.key] = *op.value;
  } else {
    state->erase(op.key);
  }
}

State DumpStore(PagedBTreeKv* kv) {
  State out;
  auto it = kv->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out[std::string(it->key())] = std::string(it->value());
  }
  return out;
}

std::string DescribeState(const State& s) {
  std::string out;
  for (const auto& [k, v] : s) {
    out += k + "=" + v.substr(0, 8) + " ";
    if (out.size() > 400) return out + "...";
  }
  return out;
}

struct TrialConfig {
  uint64_t seed = 0;
  bool fsync_on_commit = true;
  int ops = 150;
  int checkpoint_every = 0;  // 0 = never
  // Upper bound on ordinary (non-overflow) value sizes; the short-write
  // schedule uses values wider than a sector so torn frames persist
  // meaningful prefixes.
  int value_max = 40;
  // Fault schedule (<= 0 disarms each) and which file it targets
  // (".wal" or ".db").
  int64_t fail_after_fsyncs = -1;
  int64_t short_write_at = -1;
  std::string fault_filter;
};

// Runs one kill-and-replay trial; all properties are asserted inside.
void RunTrial(const TrialConfig& config) {
  SCOPED_TRACE("seed=" + std::to_string(config.seed) +
               " fsync_on_commit=" + std::to_string(config.fsync_on_commit) +
               " ckpt_every=" + std::to_string(config.checkpoint_every) +
               " fail_after_fsyncs=" +
               std::to_string(config.fail_after_fsyncs) + " short_write_at=" +
               std::to_string(config.short_write_at) + " filter=" +
               config.fault_filter);
  Rng rng(config.seed * 2654435761u + 13);

  MemFileSystem base;
  std::unique_ptr<FaultFileSystem> faulty;
  storage::FileSystem* fs = &base;
  if (config.fail_after_fsyncs > 0 || config.short_write_at > 0) {
    FaultOptions fault;
    fault.fail_after_fsyncs = config.fail_after_fsyncs;
    fault.short_write_at = config.short_write_at;
    faulty = std::make_unique<FaultFileSystem>(&base, fault,
                                              config.fault_filter);
    fs = faulty.get();
  }

  PagerOptions pager_options;
  pager_options.cache_pages = 8;  // tiny pool: constant dirty evictions
  pager_options.fsync_on_commit = config.fsync_on_commit;

  // The logged op history and the index below which ops are guaranteed
  // durable (the "no lost acks" floor).
  std::vector<Op> history;
  size_t durable_floor = 0;

  {
    auto opened = PagedBTreeKv::Open(fs, "kv.db", "kv.wal", pager_options);
    if (!opened.ok()) return;  // fault fired during create: nothing acked
    auto& kv = *opened;

    for (int i = 0; i < config.ops; ++i) {
      Op op;
      op.key = "key" + std::to_string(rng.Uniform(40));
      uint64_t kind = rng.Uniform(10);
      if (kind < 7) {
        // Mostly puts; occasionally a multi-page overflow value.
        size_t len = rng.Uniform(20) == 0
                         ? 5000
                         : rng.Uniform(uint64_t(config.value_max)) + 1;
        op.value = std::string(len, char('a' + rng.Uniform(26)));
      }
      // The WAL append offset advances exactly when an op's record
      // reached the log — the discriminator between the two failure
      // modes below. (A read-back would not do: with the WAL fsync
      // dead, Get itself can fail on a dirty eviction.)
      uint64_t wal_bytes = kv->pager()->wal()->size_bytes();
      Status s = op.value.has_value() ? kv->Put(op.key, *op.value)
                                      : kv->Delete(op.key);
      if (s.IsNotFound()) continue;  // delete of a missing key: no-op
      if (!s.ok()) {
        // A failed op is either rolled back (WAL append failed or the
        // pager is degraded: state unchanged, no record in the log) or
        // commit-unknown (record appended but the fsync failed: the
        // in-memory state stands and the record may replay). The log is
        // exactly the sequence of applied ops: commit-unknown ops stay
        // in the history as maybe-durable entries, rolled-back ops
        // never happened. The workload keeps going either way — later
        // acked commits must survive regardless of earlier failures.
        bool record_logged = kv->pager()->wal()->size_bytes() != wal_bytes;
        if (record_logged) history.push_back(std::move(op));
        continue;
      }
      history.push_back(std::move(op));
      if (config.fsync_on_commit) durable_floor = history.size();
      if (config.checkpoint_every > 0 &&
          (i + 1) % config.checkpoint_every == 0) {
        // A failed checkpoint may degrade the pager (header-publish
        // ambiguity); keep issuing ops — they must then be refused and
        // rolled back, never acked into a log recovery cannot replay.
        if (kv->Checkpoint().ok()) durable_floor = history.size();
      }
    }
  }

  base.Crash(&rng);

  // Reopen on the bare (fault-free) file system: recovery itself must
  // succeed on whatever the crash left behind.
  auto reopened =
      PagedBTreeKv::Open(&base, "kv.db", "kv.wal", pager_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  State recovered = DumpStore(reopened->get());

  // The recovered state must equal the oracle after some prefix of the
  // history, no shorter than the durable floor.
  State candidate;
  size_t k = 0;
  for (; k <= history.size(); ++k) {
    if (k >= durable_floor && candidate == recovered) break;
    if (k < history.size()) ApplyOp(&candidate, history[k]);
  }
  std::string history_dump;
  for (size_t i = 0; i < history.size(); ++i) {
    history_dump += (i < durable_floor ? " [A]" : " [M]");
    history_dump += history[i].key + "=" +
                    (history[i].value.has_value()
                         ? history[i].value->substr(0, 4)
                         : std::string("<del>"));
    if (history_dump.size() > 2000) {
      history_dump += "...";
      break;
    }
  }
  ASSERT_LE(k, history.size())
      << "recovered state matches no acknowledged prefix\n  durable_floor="
      << durable_floor << " history=" << history.size()
      << "\n  recovered: " << DescribeState(recovered)
      << "\n  full oracle: " << DescribeState(candidate)
      << "\n  history:" << history_dump;

  // And the store must keep working after recovery.
  ASSERT_TRUE((*reopened)->Put("post-recovery", "ok").ok());
  std::string v;
  ASSERT_TRUE((*reopened)->Get("post-recovery", &v).ok());
  EXPECT_EQ(v, "ok");
}

TEST(CrashRecoveryPropertyTest, FsyncPerCommitNeverLosesAcks) {
  int trials = FullDepth() ? 60 : 8;
  for (int t = 0; t < trials; ++t) {
    TrialConfig config;
    config.seed = uint64_t(t);
    config.fsync_on_commit = true;
    RunTrial(config);
  }
}

TEST(CrashRecoveryPropertyTest, GroupDurabilityKeepsCheckpointedPrefix) {
  int trials = FullDepth() ? 60 : 8;
  for (int t = 0; t < trials; ++t) {
    TrialConfig config;
    config.seed = uint64_t(1000 + t);
    config.fsync_on_commit = false;
    config.checkpoint_every = 23;
    RunTrial(config);
  }
}

TEST(CrashRecoveryPropertyTest, SurvivesScheduledWalFsyncFailures) {
  int trials = FullDepth() ? 40 : 6;
  std::vector<int64_t> schedule =
      FullDepth() ? std::vector<int64_t>{1, 2, 3, 5, 8, 13, 21}
                  : std::vector<int64_t>{2, 5};
  for (int64_t fail_after : schedule) {
    for (int t = 0; t < trials; ++t) {
      TrialConfig config;
      config.seed = uint64_t(2000 + t) * 31 + uint64_t(fail_after);
      config.fsync_on_commit = true;
      config.fail_after_fsyncs = fail_after;
      config.fault_filter = ".wal";
      RunTrial(config);
    }
  }
}

TEST(CrashRecoveryPropertyTest, SurvivesScheduledDbFsyncFailures) {
  int trials = FullDepth() ? 40 : 6;
  std::vector<int64_t> schedule = FullDepth()
                                      ? std::vector<int64_t>{1, 2, 3, 5, 8}
                                      : std::vector<int64_t>{1, 3};
  for (int64_t fail_after : schedule) {
    for (int t = 0; t < trials; ++t) {
      TrialConfig config;
      config.seed = uint64_t(3000 + t) * 17 + uint64_t(fail_after);
      config.fsync_on_commit = true;
      config.checkpoint_every = 19;  // checkpoints hit the db file
      config.fail_after_fsyncs = fail_after;
      config.fault_filter = ".db";
      RunTrial(config);
    }
  }
}

// A short write tears one WAL frame mid-run (the op is rolled back); all
// later acked commits must still be recoverable — the next record has to
// overwrite the partial frame, not splice itself after garbage that cuts
// the scan short.
TEST(CrashRecoveryPropertyTest, SurvivesWalShortWrites) {
  int trials = FullDepth() ? 40 : 6;
  std::vector<int64_t> schedule = FullDepth()
                                      ? std::vector<int64_t>{2, 3, 5, 9, 25}
                                      : std::vector<int64_t>{3, 9};
  for (int64_t write_at : schedule) {
    for (int t = 0; t < trials; ++t) {
      TrialConfig config;
      config.seed = uint64_t(4000 + t) * 29 + uint64_t(write_at);
      config.fsync_on_commit = true;
      // Values wider than a sector so the torn frame persists a prefix.
      config.value_max = 1200;
      config.short_write_at = write_at;  // write #1 is the header
      config.fault_filter = ".wal";
      RunTrial(config);
    }
  }
}

}  // namespace
}  // namespace graphbench
