#include "snb/csv_io.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "snb/datagen.h"

namespace graphbench {
namespace snb {
namespace {

std::string TempDir() {
  std::string dir =
      std::filesystem::temp_directory_path() / "graphbench_csv_test";
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CsvIoTest, RoundTripsWholeDataset) {
  DatagenOptions options;
  options.num_persons = 60;
  options.seed = 13;
  Dataset original = Generate(options);
  std::string dir = TempDir();
  ASSERT_TRUE(WriteCsv(original, dir).ok());

  auto loaded = ReadCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->persons.size(), original.persons.size());
  EXPECT_EQ(loaded->knows.size(), original.knows.size());
  EXPECT_EQ(loaded->forums.size(), original.forums.size());
  EXPECT_EQ(loaded->members.size(), original.members.size());
  EXPECT_EQ(loaded->posts.size(), original.posts.size());
  EXPECT_EQ(loaded->comments.size(), original.comments.size());
  EXPECT_EQ(loaded->likes.size(), original.likes.size());
  EXPECT_EQ(loaded->tags.size(), original.tags.size());
  EXPECT_EQ(loaded->post_tags.size(), original.post_tags.size());
  EXPECT_EQ(loaded->places.size(), original.places.size());
  EXPECT_EQ(loaded->organisations.size(), original.organisations.size());
  EXPECT_EQ(loaded->study_at.size(), original.study_at.size());
  EXPECT_EQ(loaded->work_at.size(), original.work_at.size());
  EXPECT_EQ(loaded->update_stream.size(), original.update_stream.size());

  // Spot-check field fidelity.
  for (size_t i = 0; i < original.persons.size(); i += 7) {
    EXPECT_EQ(loaded->persons[i].first_name, original.persons[i].first_name);
    EXPECT_EQ(loaded->persons[i].creation_date,
              original.persons[i].creation_date);
    EXPECT_EQ(loaded->persons[i].location_ip,
              original.persons[i].location_ip);
  }
  for (size_t i = 0; i < original.update_stream.size(); i += 13) {
    EXPECT_EQ(loaded->update_stream[i].kind, original.update_stream[i].kind);
    EXPECT_EQ(loaded->update_stream[i].scheduled_date,
              original.update_stream[i].scheduled_date);
  }
  std::filesystem::remove_all(dir);
}

TEST(CsvIoTest, EscapesDelimitersInContent) {
  Dataset data;
  Person p;
  p.id = 1;
  p.first_name = "pipe|in|name";
  p.last_name = "back\\slash";
  p.gender = "x";
  p.browser = "multi\nline";
  p.location_ip = "1.2.3.4";
  p.city_id = 1;
  data.persons.push_back(p);
  std::string dir = TempDir();
  ASSERT_TRUE(WriteCsv(data, dir).ok());
  auto loaded = ReadCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->persons.size(), 1u);
  EXPECT_EQ(loaded->persons[0].first_name, "pipe|in|name");
  EXPECT_EQ(loaded->persons[0].last_name, "back\\slash");
  EXPECT_EQ(loaded->persons[0].browser, "multi\nline");
  std::filesystem::remove_all(dir);
}

TEST(CsvIoTest, ReadMissingDirectoryFails) {
  auto r = ReadCsv("/nonexistent/graphbench/dir");
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(CsvIoTest, CsvBytesApproximateRawBytesEstimate) {
  DatagenOptions options;
  options.num_persons = 120;
  options.seed = 4;
  Dataset data = Generate(options);
  std::string dir = TempDir();
  ASSERT_TRUE(WriteCsv(data, dir).ok());
  uint64_t on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename() == "update_stream.csv") continue;
    on_disk += entry.file_size();
  }
  uint64_t estimate = data.RawBytes();
  // Table 1's raw-size estimate should be the right order of magnitude.
  EXPECT_GT(on_disk, estimate / 4);
  EXPECT_LT(on_disk, estimate * 4);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace snb
}  // namespace graphbench
