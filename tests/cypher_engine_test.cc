#include "engines/native/cypher_engine.h"

#include <gtest/gtest.h>

namespace graphbench {
namespace {

class CypherEngineTest : public ::testing::Test {
 protected:
  CypherEngineTest() : engine_(&graph_) {
    NativeGraphOptions opts;
    opts.checkpoint_interval_writes = 0;
  }

  void SetUp() override {
    ASSERT_TRUE(graph_.CreateUniqueIndex("Person", "id").ok());
    const char* names[] = {"Ada", "Bob", "Cy", "Dee", "Eve"};
    for (int i = 1; i <= 5; ++i) {
      auto r = engine_.Execute(
          "CREATE (p:Person {id: $id, firstName: $fn})",
          {{"id", Value(i)}, {"fn", Value(names[i - 1])}});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->affected, 1u);
    }
    // knows chain 1-2-3-4-5 plus shortcut 1-3 (directed storage,
    // undirected traversal via -[:KNOWS]-).
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}}) {
      auto r = engine_.Execute(
          "MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
          "CREATE (a)-[:KNOWS {creationDate: 20170707}]->(b)",
          {{"a", Value(a)}, {"b", Value(b)}});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->affected, 1u);
    }
  }

  NativeGraph graph_;
  CypherEngine engine_;
};

TEST_F(CypherEngineTest, PointLookup) {
  auto r = engine_.Execute(
      "MATCH (p:Person {id: $id}) RETURN p.firstName", {{"id", Value(3)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "Cy");
  EXPECT_EQ(r->columns[0], "p.firstName");
}

TEST_F(CypherEngineTest, OneHopUndirected) {
  auto r = engine_.Execute(
      "MATCH (p:Person {id: $id})-[:KNOWS]-(f) "
      "RETURN f.id, f.firstName ORDER BY f.id",
      {{"id", Value(3)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);  // 1, 2, 4
  EXPECT_EQ(r->rows[0][0].as_int(), 1);
  EXPECT_EQ(r->rows[1][0].as_int(), 2);
  EXPECT_EQ(r->rows[2][0].as_int(), 4);
}

TEST_F(CypherEngineTest, OneHopDirected) {
  auto out = engine_.Execute(
      "MATCH (p:Person {id: $id})-[:KNOWS]->(f) RETURN f.id ORDER BY f.id",
      {{"id", Value(1)}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 2u);  // ->2, ->3

  auto in = engine_.Execute(
      "MATCH (p:Person {id: $id})<-[:KNOWS]-(f) RETURN f.id",
      {{"id", Value(1)}});
  ASSERT_TRUE(in.ok());
  EXPECT_TRUE(in->rows.empty());
}

TEST_F(CypherEngineTest, TwoHopDistinctExcludingSelf) {
  auto r = engine_.Execute(
      "MATCH (p:Person {id: $id})-[:KNOWS]-(f)-[:KNOWS]-(ff) "
      "WHERE ff.id <> $id RETURN DISTINCT ff.id ORDER BY ff.id",
      {{"id", Value(1)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // neighbours of 1: {2,3}; their neighbours: 2->{1,3}, 3->{1,2,4}; minus 1
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].as_int(), 2);
  EXPECT_EQ(r->rows[1][0].as_int(), 3);
  EXPECT_EQ(r->rows[2][0].as_int(), 4);
}

TEST_F(CypherEngineTest, ShortestPathLength) {
  auto r = engine_.Execute(
      "MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
      "RETURN length(shortestPath((a)-[:KNOWS*]-(b))) AS len",
      {{"a", Value(1)}, {"b", Value(5)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 3);
  EXPECT_EQ(r->columns[0], "len");
}

TEST_F(CypherEngineTest, CountStar) {
  auto r = engine_.Execute("MATCH (p:Person) RETURN count(*)", {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].as_int(), 5);
}

TEST_F(CypherEngineTest, ImplicitGroupingWithCount) {
  // Friend count per person over the whole graph, most popular first.
  auto r = engine_.Execute(
      "MATCH (p:Person)-[:KNOWS]-(f) "
      "RETURN p.id, count(*) AS n ORDER BY count(*) DESC, p.id LIMIT 2",
      {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  // Degrees: 1:{2,3}, 2:{1,3}, 3:{2,4,1}, 4:{3,5}, 5:{4} -> 3 has 3.
  EXPECT_EQ(r->rows[0][0].as_int(), 3);
  EXPECT_EQ(r->rows[0][1].as_int(), 3);
  EXPECT_EQ(r->rows[1][1].as_int(), 2);
}

TEST_F(CypherEngineTest, BareCountOverEmptyMatchIsZero) {
  auto r = engine_.Execute(
      "MATCH (p:Person {id: $id})-[:KNOWS]-(f) RETURN count(*)",
      {{"id", Value(999)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 0);
}

TEST_F(CypherEngineTest, MissingVertexGivesEmpty) {
  auto r = engine_.Execute("MATCH (p:Person {id: $id}) RETURN p.firstName",
                           {{"id", Value(99)}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(CypherEngineTest, LimitAndDesc) {
  auto r = engine_.Execute(
      "MATCH (p:Person) RETURN p.id ORDER BY p.id DESC LIMIT 2", {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_int(), 5);
  EXPECT_EQ(r->rows[1][0].as_int(), 4);
}

TEST_F(CypherEngineTest, CreateRejectsUndirectedRelationship) {
  auto r = engine_.Execute(
      "MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
      "CREATE (a)-[:KNOWS]-(b)",
      {{"a", Value(1)}, {"b", Value(2)}});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(CypherEngineTest, CreateDuplicateIdRejectedByIndex) {
  auto r = engine_.Execute("CREATE (p:Person {id: $id})", {{"id", Value(1)}});
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST_F(CypherEngineTest, MissingParameterIsError) {
  auto r = engine_.Execute("MATCH (p:Person {id: $nope}) RETURN p.id", {});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(CypherEngineTest, VariableLengthExactHops) {
  // Chain 1-2-3-4-5 plus shortcut 1-3: vertices exactly 2 hops from 1
  // (not reachable in 1) are {4} via 3, and 2 via 3... 2 is at distance 1,
  // so distinct-vertex *2..2 from 1 = {4} (3 and 2 are closer).
  auto r = engine_.Execute(
      "MATCH (p:Person {id: $id})-[:KNOWS*2..2]-(ff) "
      "RETURN ff.id ORDER BY ff.id",
      {{"id", Value(1)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 4);
}

TEST_F(CypherEngineTest, VariableLengthRange) {
  auto r = engine_.Execute(
      "MATCH (p:Person {id: $id})-[:KNOWS*1..3]-(x) "
      "RETURN DISTINCT x.id ORDER BY x.id",
      {{"id", Value(1)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Everything within 3 hops of 1: 2,3 (1 hop), 4 (2), 5 (3).
  ASSERT_EQ(r->rows.size(), 4u);
  EXPECT_EQ(r->rows[3][0].as_int(), 5);
}

TEST_F(CypherEngineTest, VariableLengthBareStarCapped) {
  auto r = engine_.Execute(
      "MATCH (p:Person {id: $id})-[:KNOWS*]-(x) RETURN count(*)",
      {{"id", Value(1)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].as_int(), 4);  // whole component minus self
}

TEST_F(CypherEngineTest, VariableLengthRejectsBadBoundsAndCreate) {
  EXPECT_FALSE(engine_.Execute(
                       "MATCH (a:Person {id: $a})-[:KNOWS*3..2]-(b) "
                       "RETURN b.id",
                       {{"a", Value(1)}})
                   .ok());
  EXPECT_FALSE(engine_.Execute(
                       "MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
                       "CREATE (a)-[:KNOWS*2]->(b)",
                       {{"a", Value(1)}, {"b", Value(2)}})
                   .ok());
}

TEST_F(CypherEngineTest, ParserRejectsMalformed) {
  EXPECT_FALSE(engine_.Execute("RETURN 1", {}).ok());
  EXPECT_FALSE(engine_.Execute("MATCH (p RETURN p.id", {}).ok());
  EXPECT_FALSE(
      engine_.Execute("MATCH (a)-[K]-(b) RETURN a.id", {}).ok());
  EXPECT_FALSE(engine_.Execute("MATCH (p:Person) RETURN p.id LIMIT x",
                               {}).ok());
}

TEST_F(CypherEngineTest, WhereComparesAcrossVars) {
  auto r = engine_.Execute(
      "MATCH (p:Person {id: $id})-[:KNOWS]-(f) WHERE f.id > p.id "
      "RETURN f.id ORDER BY f.id",
      {{"id", Value(3)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 4);
}

}  // namespace
}  // namespace graphbench
