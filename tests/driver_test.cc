#include "driver/driver.h"

#include <gtest/gtest.h>

#include "snb/datagen.h"
#include "snb/update_codec.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

snb::DatagenOptions SmallOptions() {
  snb::DatagenOptions o;
  o.num_persons = 80;
  o.seed = 21;
  o.max_degree = 15;
  return o;
}

TEST(MqTest, ProduceConsumeRoundTrip) {
  mq::Broker broker;
  ASSERT_TRUE(broker.CreateTopic("t", 2).ok());
  mq::Producer producer(&broker, "t");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(producer.Send("key" + std::to_string(i % 5),
                              "payload" + std::to_string(i))
                    .ok());
  }
  mq::Consumer consumer(&broker, "t");
  size_t total = 0;
  while (!consumer.CaughtUp()) {
    auto batch = consumer.Poll(7);
    ASSERT_TRUE(batch.ok());
    total += batch->size();
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(consumer.consumed(), 100u);
  // Fully drained: further polls are empty.
  auto more = consumer.Poll(10);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(more->empty());
}

TEST(MqTest, LagTracksUnconsumedMessages) {
  mq::Broker broker;
  ASSERT_TRUE(broker.CreateTopic("lag", 2).ok());
  mq::Producer producer(&broker, "lag");
  mq::Consumer consumer(&broker, "lag");
  EXPECT_EQ(consumer.Lag(), 0u);
  EXPECT_TRUE(consumer.CaughtUp());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(producer.Send("k" + std::to_string(i), "p").ok());
  }
  EXPECT_EQ(consumer.Lag(), 30u);
  EXPECT_FALSE(consumer.CaughtUp());
  auto batch = consumer.Poll(10);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(consumer.Lag(), 30u - batch->size());
  while (consumer.Lag() > 0) {
    ASSERT_TRUE(consumer.Poll(10).ok());
  }
  EXPECT_TRUE(consumer.CaughtUp());
  EXPECT_EQ(consumer.consumed(), 30u);
}

TEST(MqTest, SingleTopicPartitionPreservesOrder) {
  mq::Broker broker;
  ASSERT_TRUE(broker.CreateTopic("ordered", 1).ok());
  mq::Producer producer(&broker, "ordered");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(producer.Send("", std::to_string(i), i).ok());
  }
  mq::Consumer consumer(&broker, "ordered");
  int expected = 0;
  while (!consumer.CaughtUp()) {
    auto batch = consumer.Poll(8);
    ASSERT_TRUE(batch.ok());
    for (const auto& m : *batch) {
      EXPECT_EQ(m.payload, std::to_string(expected));
      ++expected;
    }
  }
  EXPECT_EQ(expected, 50);
}

TEST(MqTest, ErrorsOnUnknownTopicAndBadPartition) {
  mq::Broker broker;
  mq::Producer producer(&broker, "nope");
  EXPECT_TRUE(producer.Send("", "x").status().IsNotFound());
  ASSERT_TRUE(broker.CreateTopic("t", 1).ok());
  EXPECT_TRUE(broker.Fetch("t", 5, 0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(broker.Fetch("missing", 0, 0, 1).status().IsNotFound());
  EXPECT_TRUE(broker.CreateTopic("t", 1).IsAlreadyExists());
  EXPECT_TRUE(broker.CreateTopic("z", 0).IsInvalidArgument());
}

TEST(UpdateCodecTest, AllKindsRoundTrip) {
  snb::Dataset data = snb::Generate(SmallOptions());
  ASSERT_FALSE(data.update_stream.empty());
  std::set<uint8_t> kinds_seen;
  for (const auto& op : data.update_stream) {
    std::string bytes = snb::EncodeUpdate(op);
    auto decoded = snb::DecodeUpdate(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, op.kind);
    EXPECT_EQ(decoded->scheduled_date, op.scheduled_date);
    EXPECT_EQ(decoded->dependency_date, op.dependency_date);
    kinds_seen.insert(uint8_t(op.kind));
  }
  // The generated stream should exercise several update kinds.
  EXPECT_GE(kinds_seen.size(), 4u);
  EXPECT_FALSE(snb::DecodeUpdate("").ok());
  EXPECT_FALSE(snb::DecodeUpdate("\x01trunc").ok());
}

TEST(DatagenTest, DeterministicForSeed) {
  snb::Dataset a = snb::Generate(SmallOptions());
  snb::Dataset b = snb::Generate(SmallOptions());
  EXPECT_EQ(a.persons.size(), b.persons.size());
  EXPECT_EQ(a.knows.size(), b.knows.size());
  EXPECT_EQ(a.update_stream.size(), b.update_stream.size());
  ASSERT_FALSE(a.persons.empty());
  EXPECT_EQ(a.persons[0].first_name, b.persons[0].first_name);
}

TEST(DatagenTest, UpdateStreamIsTimestampOrderedAndDependencySafe) {
  snb::Dataset data = snb::Generate(SmallOptions());
  int64_t prev = 0;
  for (const auto& op : data.update_stream) {
    EXPECT_GE(op.scheduled_date, prev);
    prev = op.scheduled_date;
    // The dependency must exist strictly before the op executes.
    EXPECT_LT(op.dependency_date, op.scheduled_date);
  }
}

TEST(DatagenTest, ScalesAreOrdered) {
  snb::Dataset a = snb::Generate(snb::ScaleA());
  snb::Dataset b = snb::Generate(snb::ScaleB());
  EXPECT_GT(b.VertexCount(), 2 * a.VertexCount());
  EXPECT_GT(b.EdgeCount(), 2 * a.EdgeCount());
  EXPECT_GT(a.RawBytes(), 0u);
}

TEST(DriverTest, RunsMixAgainstRelationalSut) {
  snb::Dataset data = snb::Generate(SmallOptions());
  auto sut = MakeSut(SutKind::kPostgresSql);
  ASSERT_TRUE(sut->Load(data).ok());

  mq::Broker broker;
  ASSERT_TRUE(
      InteractiveDriver::ProduceUpdates(&broker, "updates", data).ok());

  DriverOptions options;
  options.num_readers = 2;
  options.run_millis = 300;
  InteractiveDriver driver(sut.get(), &broker, options);
  snb::ParamPools params(data, 5);
  auto metrics = driver.Run("updates", &params);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_GT(metrics->reads_completed, 0u);
  EXPECT_EQ(metrics->writes_completed, data.update_stream.size());
  EXPECT_EQ(metrics->write_errors, 0u);
  EXPECT_EQ(metrics->dependency_violations, 0u);
  EXPECT_GT(metrics->reads_per_second, 0.0);
  EXPECT_GT(metrics->writes_per_second, 0.0);
  EXPECT_GT(metrics->read_latency_micros.count(), 0u);

  uint64_t timeline_total = 0;
  for (uint64_t n : metrics->read_timeline) timeline_total += n;
  EXPECT_EQ(timeline_total, metrics->reads_completed);
}

TEST(DriverTest, PacedReplayHoldsThePresetRate) {
  snb::Dataset data = snb::Generate(SmallOptions());
  auto sut = MakeSut(SutKind::kPostgresSql);
  ASSERT_TRUE(sut->Load(data).ok());
  mq::Broker broker;
  ASSERT_TRUE(
      InteractiveDriver::ProduceUpdates(&broker, "paced", data).ok());

  DriverOptions options;
  options.num_readers = 0;
  options.run_millis = 600;
  options.replay_updates_per_second = 500;  // well below SUT capacity
  InteractiveDriver driver(sut.get(), &broker, options);
  snb::ParamPools params(data, 5);
  auto metrics = driver.Run("paced", &params);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // ~500/s over 0.6s ≈ 300 ops (or the whole stream if smaller), and the
  // measured write rate tracks the schedule, not SUT capacity.
  uint64_t expected =
      std::min<uint64_t>(data.update_stream.size(), 300 + 64);
  EXPECT_LE(metrics->writes_completed, expected);
  EXPECT_GT(metrics->writes_completed, 200u);
  EXPECT_EQ(metrics->late_writes, 0u);
  EXPECT_LT(metrics->writes_per_second, 700.0);
}

TEST(DriverTest, WriterAppliesEverythingEvenWithoutReaders) {
  snb::Dataset data = snb::Generate(SmallOptions());
  auto sut = MakeSut(SutKind::kVirtuosoSparql);
  ASSERT_TRUE(sut->Load(data).ok());

  mq::Broker broker;
  ASSERT_TRUE(
      InteractiveDriver::ProduceUpdates(&broker, "updates", data).ok());
  DriverOptions options;
  options.num_readers = 0;
  options.run_millis = 200;
  InteractiveDriver driver(sut.get(), &broker, options);
  snb::ParamPools params(data, 5);
  auto metrics = driver.Run("updates", &params);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->writes_completed, data.update_stream.size());
  EXPECT_EQ(metrics->reads_completed, 0u);
}

}  // namespace
}  // namespace graphbench
