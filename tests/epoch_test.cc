#include "concurrency/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "concurrency/versioned.h"

namespace graphbench {
namespace concurrency {
namespace {

std::shared_ptr<const void> Erase(std::shared_ptr<int> p) {
  return std::static_pointer_cast<const void>(std::move(p));
}

TEST(EpochManagerTest, RetiredObjectSurvivesUntilEpochAdvances) {
  EpochManager& mgr = EpochManager::Global();
  auto obj = std::make_shared<int>(7);
  std::weak_ptr<int> w = obj;
  {
    WriteBatch batch;
    mgr.Retire(Erase(std::move(obj)));
    // Mid-batch the retired version is still the visible one.
    mgr.Reclaim();
    EXPECT_FALSE(w.expired());
  }
  // Batch commit advanced the epoch and drained the list (no pins).
  EXPECT_TRUE(w.expired());
}

TEST(EpochManagerTest, NoReclaimWhilePinnedDrainsOnUnpin) {
  EpochManager& mgr = EpochManager::Global();
  auto obj = std::make_shared<int>(7);
  std::weak_ptr<int> w = obj;
  {
    EpochGuard pin;
    {
      WriteBatch batch;
      mgr.Retire(Erase(std::move(obj)));
    }
    // The writer committed, but this reader's pin still reaches the
    // retired version.
    mgr.Reclaim();
    EXPECT_FALSE(w.expired());
    EXPECT_GE(mgr.pinned_readers(), 1u);
  }
  // Last reader out sweeps.
  EXPECT_TRUE(w.expired());
}

TEST(EpochManagerTest, NestedGuardsShareOnePin) {
  EpochManager& mgr = EpochManager::Global();
  EpochGuard outer;
  {
    WriteBatch batch;  // would advance on commit...
  }
  // ...but a nested guard must keep the outer snapshot, not repin.
  EpochGuard inner;
  EXPECT_EQ(inner.epoch(), outer.epoch());
  EXPECT_LT(outer.epoch(), mgr.current());
}

TEST(EpochManagerTest, NestedBatchesCommitOnce) {
  EpochManager& mgr = EpochManager::Global();
  uint64_t before = mgr.current();
  {
    WriteBatch outer;
    {
      WriteBatch inner;
    }
    // Inner close must not commit while the outer batch is open.
    EXPECT_EQ(mgr.current(), before);
  }
  EXPECT_EQ(mgr.current(), before + 1);
}

TEST(EpochManagerTest, StatsCountRetireAndReclaim) {
  EpochManager& mgr = EpochManager::Global();
  {
    WriteBatch batch;  // drain anything left over
  }
  uint64_t retired = mgr.total_retired();
  uint64_t reclaimed = mgr.total_reclaimed();
  {
    WriteBatch batch;
    mgr.Retire(Erase(std::make_shared<int>(1)));
    mgr.Retire(Erase(std::make_shared<int>(2)));
  }
  EXPECT_EQ(mgr.total_retired(), retired + 2);
  EXPECT_EQ(mgr.total_reclaimed(), reclaimed + 2);
  EXPECT_EQ(mgr.retired_outstanding(), 0u);
}

TEST(VersionedCellTest, UncommittedWritesInvisibleThenAtomic) {
  EpochManager& mgr = EpochManager::Global();
  VersionedCell<int> a;
  VersionedCell<int> b;
  {
    WriteBatch batch;
    a.Store(mgr, 1);
    b.Store(mgr, 1);
    EpochGuard pin;
    // Mid-batch: neither write is visible...
    EXPECT_EQ(a.Read(pin.epoch()), nullptr);
    EXPECT_EQ(b.Read(pin.epoch()), nullptr);
    // ...but the writer reads its own batch.
    ASSERT_NE(a.WriterLatest(), nullptr);
    EXPECT_EQ(*a.WriterLatest(), 1);
  }
  EpochGuard pin;
  ASSERT_NE(a.Read(pin.epoch()), nullptr);
  EXPECT_EQ(*a.Read(pin.epoch()), 1);
  EXPECT_EQ(*b.Read(pin.epoch()), 1);
}

TEST(VersionedCellTest, PinnedReaderKeepsItsSnapshotValue) {
  EpochManager& mgr = EpochManager::Global();
  VersionedCell<int> cell;
  {
    WriteBatch batch;
    cell.Store(mgr, 1);
  }
  EpochGuard pin;
  {
    WriteBatch batch;
    cell.Store(mgr, 2);
  }
  // New readers see 2; the pinned reader still sees 1.
  EXPECT_EQ(*cell.Read(pin.epoch()), 1);
  EpochGuard fresh;  // nested: same thread shares the pin
  EXPECT_EQ(*cell.Read(fresh.epoch()), 1);
  std::thread other([&cell] {
    EpochGuard g;
    EXPECT_EQ(*cell.Read(g.epoch()), 2);
  });
  other.join();
}

TEST(VersionedTableTest, AppendAndVersionVisibility) {
  EpochManager& mgr = EpochManager::Global();
  VersionedTable<std::vector<int>> table;
  size_t idx;
  {
    WriteBatch batch;
    idx = table.Append(mgr, {1, 2});
    // Multiple publishes in one batch mutate one version in place.
    table.Publish(mgr, idx, [](std::vector<int>& v) { v.push_back(3); });
  }
  EpochGuard pin;
  ASSERT_NE(table.Read(idx, pin.epoch()), nullptr);
  EXPECT_EQ(*table.Read(idx, pin.epoch()), (std::vector<int>{1, 2, 3}));
  {
    WriteBatch batch;
    table.Publish(mgr, idx, [](std::vector<int>& v) { v.clear(); });
    // Pinned reader keeps the pre-batch version even mid-batch...
    EXPECT_EQ(table.Read(idx, pin.epoch())->size(), 3u);
  }
  // ...and after commit, until it unpins.
  EXPECT_EQ(table.Read(idx, pin.epoch())->size(), 3u);
  EXPECT_TRUE(table.WriterLatest(idx)->empty());
}

TEST(VersionedTableTest, GrowthAcrossChunksKeepsOldSlotsReadable) {
  EpochManager& mgr = EpochManager::Global();
  VersionedTable<int, 8> table;  // tiny chunks: force directory growth
  {
    WriteBatch batch;
    for (int i = 0; i < 100; ++i) table.Append(mgr, i * 10);
  }
  EpochGuard pin;
  ASSERT_EQ(table.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(table.Read(i, pin.epoch()), nullptr) << i;
    EXPECT_EQ(*table.Read(i, pin.epoch()), i * 10);
  }
}

TEST(EpochHashMapTest, InsertVisibilityAndUniqueness) {
  EpochManager& mgr = EpochManager::Global();
  EpochHashMap<int64_t, int> map(4);  // small: force growth
  {
    WriteBatch batch;
    for (int64_t k = 0; k < 50; ++k) EXPECT_TRUE(map.Insert(mgr, k, int(k)));
    EXPECT_FALSE(map.Insert(mgr, 7, 99));  // duplicate, same batch
    EpochGuard pin;
    EXPECT_EQ(map.Find(7, pin.epoch()), nullptr);  // uncommitted
    ASSERT_NE(map.Find(7, EpochManager::kWriterPin), nullptr);
  }
  EpochGuard pin;
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_NE(map.Find(k, pin.epoch()), nullptr) << k;
    EXPECT_EQ(*map.Find(k, pin.epoch()), int(k));
  }
  EXPECT_EQ(map.Find(1234, pin.epoch()), nullptr);
}

TEST(StableVecTest, GrowthKeepsAddressesStable) {
  EpochManager& mgr = EpochManager::Global();
  StableVec<std::string, 4> vec;
  WriteBatch batch;
  vec.PushBack(mgr, "first");
  const std::string* p = &vec[0];
  for (int i = 1; i < 100; ++i) vec.PushBack(mgr, "s" + std::to_string(i));
  EXPECT_EQ(p, &vec[0]);
  EXPECT_EQ(vec[0], "first");
  EXPECT_EQ(vec[99], "s99");
}

// Reclamation stress: a writer churns versions (every publish retires the
// predecessor) while readers traverse them. ASan verifies nothing is
// freed under a live pin; TSan verifies the pin/publish/retire ordering.
TEST(EpochStressTest, ChurnUnderConcurrentReaders) {
  EpochManager& mgr = EpochManager::Global();
  VersionedCell<std::vector<int>> cell;
  VersionedTable<std::vector<int>> table;
  {
    WriteBatch batch;
    for (int i = 0; i < 8; ++i) table.Append(mgr, std::vector<int>(16, 0));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard g;
        const std::vector<int>* v = cell.Read(g.epoch());
        if (v != nullptr && !v->empty()) {
          // Every version is internally uniform; a torn or freed read
          // trips this (or the sanitizer).
          int first = (*v)[0];
          for (int x : *v) ASSERT_EQ(x, first);
        }
        for (size_t i = 0; i < table.size(); ++i) {
          const std::vector<int>* row = table.Read(i, g.epoch());
          if (row == nullptr) continue;
          int first = row->empty() ? 0 : (*row)[0];
          for (int x : *row) ASSERT_EQ(x, first);
        }
      }
    });
  }
  for (int round = 1; round <= 3000; ++round) {
    WriteBatch batch;
    cell.Store(mgr, std::vector<int>(32, round));
    table.Publish(mgr, size_t(round) % 8, [round](std::vector<int>& v) {
      v.assign(16, round);
    });
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  {
    WriteBatch drain;
  }
  EXPECT_EQ(mgr.retired_outstanding(), 0u);
}

}  // namespace
}  // namespace concurrency
}  // namespace graphbench
