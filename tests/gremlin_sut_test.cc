// GremlinSut-specific behaviour: ordered short reads, concurrent loading
// equivalence, and server sizing effects.

#include "sut/gremlin_sut.h"

#include <gtest/gtest.h>

#include "snb/datagen.h"

namespace graphbench {
namespace {

snb::DatagenOptions TinyOptions() {
  snb::DatagenOptions o;
  o.num_persons = 70;
  o.seed = 31;
  return o;
}

TEST(GremlinSutTest, RecentPostsOrderedDescAndLimited) {
  snb::Dataset data = snb::Generate(TinyOptions());
  auto sut = MakeNeo4jGremlinSut();
  ASSERT_TRUE(sut->Load(data).ok());

  // Find a creator with >= 3 posts.
  std::map<int64_t, int> posts_by;
  for (const auto& p : data.posts) ++posts_by[p.creator];
  int64_t creator = -1;
  for (const auto& [id, n] : posts_by) {
    if (n >= 3) {
      creator = id;
      break;
    }
  }
  ASSERT_NE(creator, -1) << "dataset should contain an active poster";

  auto r = sut->RecentPosts(creator, 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_GE(r->rows[0][2].as_int(), r->rows[1][2].as_int());
}

TEST(GremlinSutTest, ConcurrentLoadMatchesSingleLoad) {
  snb::Dataset data = snb::Generate(TinyOptions());
  auto single = MakeTitanCSut();
  ASSERT_TRUE(single->Load(data).ok());
  auto concurrent = MakeTitanCSut();
  ASSERT_TRUE(concurrent->LoadConcurrent(data, 4).ok());

  EXPECT_EQ(single->graph()->VertexCount(),
            concurrent->graph()->VertexCount());
  EXPECT_EQ(single->graph()->EdgeCount(),
            concurrent->graph()->EdgeCount());

  // Same query answers.
  for (size_t i = 0; i < data.persons.size(); i += 19) {
    int64_t id = data.persons[i].id;
    auto a = single->TwoHop(id);
    auto b = concurrent->TwoHop(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::set<int64_t> sa, sb;
    for (const Row& row : a->rows) sa.insert(row[0].as_int());
    for (const Row& row : b->rows) sb.insert(row[0].as_int());
    EXPECT_EQ(sa, sb) << "person " << id;
  }
}

TEST(GremlinSutTest, SqlgConcurrentLoadMatchesSingleLoad) {
  snb::Dataset data = snb::Generate(TinyOptions());
  auto single = MakeSqlgSut();
  ASSERT_TRUE(single->Load(data).ok());
  auto concurrent = MakeSqlgSut();
  ASSERT_TRUE(concurrent->LoadConcurrent(data, 4).ok());
  EXPECT_EQ(single->graph()->VertexCount(),
            concurrent->graph()->VertexCount());
  EXPECT_EQ(single->graph()->EdgeCount(),
            concurrent->graph()->EdgeCount());
}

TEST(GremlinSutTest, TinyServerQueueRejectsUnderBurst) {
  snb::Dataset data = snb::Generate(TinyOptions());
  GremlinServerOptions server;
  server.workers = 1;
  server.max_queue = 1;
  auto sut = MakeNeo4jGremlinSut(server);
  ASSERT_TRUE(sut->Load(data).ok());

  std::atomic<int> busy{0}, ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        auto r = sut->TwoHop(int64_t(i % 50 + 1));
        if (r.ok()) ++ok;
        else if (r.status().IsBusy()) ++busy;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(busy.load(), 0);  // §4.4: the server saturates under bursts
}

TEST(GremlinSutTest, ApplyRejectsDanglingEdgeUpdates) {
  snb::Dataset data = snb::Generate(TinyOptions());
  auto sut = MakeTitanBSut();
  ASSERT_TRUE(sut->Load(data).ok());
  snb::UpdateOp op;
  op.kind = snb::UpdateOp::Kind::kAddFriendship;
  op.knows = {999999, 999998, 1};
  EXPECT_FALSE(sut->Apply(op).ok());
}

}  // namespace
}  // namespace graphbench
