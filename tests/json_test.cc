#include "util/json.h"

#include <gtest/gtest.h>

namespace graphbench {
namespace {

TEST(JsonTest, SerializeScalars) {
  EXPECT_EQ(Json::Null().Serialize(), "null");
  EXPECT_EQ(Json::Bool(true).Serialize(), "true");
  EXPECT_EQ(Json::Bool(false).Serialize(), "false");
  EXPECT_EQ(Json::Int(42).Serialize(), "42");
  EXPECT_EQ(Json::Int(-7).Serialize(), "-7");
  EXPECT_EQ(Json::Str("hi").Serialize(), "\"hi\"");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json::Str("a\"b\\c\nd").Serialize(), "\"a\\\"b\\\\c\\nd\"");
  auto parsed = Json::Parse("\"a\\\"b\\\\c\\nd\\t\\u0041\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\nd\tA");
}

TEST(JsonTest, ArraysAndObjects) {
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  arr.Append(Json::Str("two"));
  Json obj = Json::Object();
  obj.Set("list", std::move(arr));
  obj.Set("flag", Json::Bool(true));
  EXPECT_EQ(obj.Serialize(), "{\"list\":[1,\"two\"],\"flag\":true}");
}

TEST(JsonTest, ParseRoundTrip) {
  const char* doc =
      "{\"a\":1,\"b\":[true,null,2.5],\"c\":{\"nested\":\"x\"}}";
  auto parsed = Json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("a").as_int(), 1);
  EXPECT_EQ(parsed->Get("b").size(), 3u);
  EXPECT_TRUE(parsed->Get("b").at(1).is_null());
  EXPECT_DOUBLE_EQ(parsed->Get("b").at(2).as_number(), 2.5);
  EXPECT_EQ(parsed->Get("c").Get("nested").as_string(), "x");
  EXPECT_FALSE(parsed->Has("zzz"));
  EXPECT_TRUE(parsed->Get("zzz").is_null());
  // Re-serialize and re-parse: stable.
  auto again = Json::Parse(parsed->Serialize());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Serialize(), parsed->Serialize());
}

TEST(JsonTest, ParseWhitespaceAndNegatives) {
  auto parsed = Json::Parse("  { \"k\" : [ -3 , 1e2 ] }  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("k").at(0).as_int(), -3);
  EXPECT_DOUBLE_EQ(parsed->Get("k").at(1).as_number(), 100.0);
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("{} extra").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
}

TEST(JsonTest, SetOverwritesKey) {
  Json obj = Json::Object();
  obj.Set("k", Json::Int(1));
  obj.Set("k", Json::Int(2));
  EXPECT_EQ(obj.Get("k").as_int(), 2);
  EXPECT_EQ(obj.object_pairs().size(), 1u);
}

}  // namespace
}  // namespace graphbench
