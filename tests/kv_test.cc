#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>

#include "kv/btree_kv.h"
#include "kv/key_codec.h"
#include "kv/lsm_kv.h"
#include "kv/paged_btree_kv.h"
#include "storage/os_file.h"
#include "util/random.h"

namespace graphbench {
namespace {

// Every KV backend — the two in-memory stores and the durable paged
// B-tree — must satisfy the same ordered-store contract.
class KvStoreContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<KvStore> Make() const {
    if (std::string(GetParam()) == "btree") {
      return std::make_unique<BTreeKv>(/*fanout=*/8);  // small: force splits
    }
    if (std::string(GetParam()) == "paged") {
      storage::PagerOptions opts;
      opts.cache_pages = 16;  // small: force evictions mid-test
      auto kv = PagedBTreeKv::Open(&fs_, "kv.db", "kv.wal", opts);
      EXPECT_TRUE(kv.ok()) << kv.status().ToString();
      return std::move(kv).value();
    }
    LsmOptions opts;
    opts.memtable_bytes = 1024;  // small: force flushes/compactions
    opts.max_runs = 3;
    return std::make_unique<LsmKv>(opts);
  }

  mutable storage::MemFileSystem fs_;
};

TEST_P(KvStoreContractTest, PutGetDelete) {
  auto kv = Make();
  EXPECT_TRUE(kv->Put("k1", "v1").ok());
  EXPECT_TRUE(kv->Put("k2", "v2").ok());
  std::string v;
  ASSERT_TRUE(kv->Get("k1", &v).ok());
  EXPECT_EQ(v, "v1");
  EXPECT_TRUE(kv->Get("missing", &v).IsNotFound());
  EXPECT_TRUE(kv->Delete("k1").ok());
  EXPECT_TRUE(kv->Get("k1", &v).IsNotFound());
  ASSERT_TRUE(kv->Get("k2", &v).ok());
  EXPECT_EQ(v, "v2");
}

TEST_P(KvStoreContractTest, OverwriteKeepsSingleVersion) {
  auto kv = Make();
  EXPECT_TRUE(kv->Put("k", "a").ok());
  EXPECT_TRUE(kv->Put("k", "bb").ok());
  std::string v;
  ASSERT_TRUE(kv->Get("k", &v).ok());
  EXPECT_EQ(v, "bb");
  EXPECT_EQ(kv->Count(), 1u);
}

TEST_P(KvStoreContractTest, MatchesReferenceMapUnderRandomOps) {
  auto kv = Make();
  std::map<std::string, std::string> ref;
  Rng rng(77);
  for (int i = 0; i < 3000; ++i) {
    std::string key = "key" + std::to_string(rng.Uniform(400));
    int op = int(rng.Uniform(3));
    if (op == 0 || op == 1) {
      std::string value = "v" + std::to_string(rng.Next() % 100000);
      ASSERT_TRUE(kv->Put(key, value).ok());
      ref[key] = value;
    } else {
      Status s = kv->Delete(key);
      if (ref.count(key)) {
        // LSM deletes are blind (tombstones), btree reports NotFound.
        ref.erase(key);
      }
      (void)s;
    }
  }
  for (const auto& [k, v] : ref) {
    std::string got;
    ASSERT_TRUE(kv->Get(k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(kv->Count(), ref.size());
}

TEST_P(KvStoreContractTest, IteratorIsOrderedAndComplete) {
  auto kv = Make();
  Rng rng(5);
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(1000));
    ref[key] = "v";
    ASSERT_TRUE(kv->Put(key, "v").ok());
  }
  auto it = kv->NewIterator();
  it->SeekToFirst();
  auto expect = ref.begin();
  while (it->Valid()) {
    ASSERT_NE(expect, ref.end());
    EXPECT_EQ(it->key(), expect->first);
    it->Next();
    ++expect;
  }
  EXPECT_EQ(expect, ref.end());
}

TEST_P(KvStoreContractTest, IteratorSeek) {
  auto kv = Make();
  for (char c = 'b'; c <= 'f'; ++c) {
    ASSERT_TRUE(kv->Put(std::string(1, c), "x").ok());
  }
  auto it = kv->NewIterator();
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "c");
  it->Seek("cc");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");
  it->Seek("z");
  EXPECT_FALSE(it->Valid());
}

TEST_P(KvStoreContractTest, SizeAccountingMovesWithData) {
  auto kv = Make();
  uint64_t empty = kv->ApproximateSizeBytes();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        kv->Put("key" + std::to_string(i), std::string(100, 'x')).ok());
  }
  EXPECT_GT(kv->ApproximateSizeBytes(), empty + 100 * 100);
}

INSTANTIATE_TEST_SUITE_P(Backends, KvStoreContractTest,
                         ::testing::Values("btree", "lsm", "paged"));

// Scans must skip tombstoned slots wherever they sit in the leaf chain —
// the lazy-delete representation is invisible through every read API.
TEST_P(KvStoreContractTest, ScanAcrossTombstones) {
  auto kv = Make();
  for (int i = 0; i < 200; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "p%05d", i);
    ASSERT_TRUE(kv->Put(buf, std::to_string(i)).ok());
  }
  for (int i = 0; i < 200; i += 2) {  // delete every even key
    char buf[16];
    std::snprintf(buf, sizeof(buf), "p%05d", i);
    ASSERT_TRUE(kv->Delete(buf).ok());
  }
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(kv->ScanPrefix("p", &rows).ok());
  ASSERT_EQ(rows.size(), 100u);
  for (size_t i = 0; i < rows.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "p%05d", int(2 * i + 1));
    EXPECT_EQ(rows[i].first, buf);
  }
  // The iterator agrees, including across a tombstone-only leaf region.
  auto it = kv->NewIterator();
  it->Seek("p00099");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "p00099");
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "p00101");
  EXPECT_EQ(kv->Count(), 100u);
}

TEST(PagedBTreeKvTest, ReopenAfterCheckpointRecoversEverything) {
  storage::MemFileSystem fs;
  storage::PagerOptions opts;
  opts.cache_pages = 16;
  std::map<std::string, std::string> ref;
  {
    auto kv = PagedBTreeKv::Open(&fs, "kv.db", "kv.wal", opts);
    ASSERT_TRUE(kv.ok()) << kv.status().ToString();
    Rng rng(13);
    for (int i = 0; i < 800; ++i) {
      std::string key = "key" + std::to_string(rng.Uniform(300));
      std::string value = "v" + std::to_string(rng.Next() % 100000);
      ASSERT_TRUE((*kv)->Put(key, value).ok());
      ref[key] = value;
    }
    ASSERT_TRUE((*kv)->Checkpoint().ok());
    // Post-checkpoint writes live only in the WAL at reopen time.
    for (int i = 0; i < 50; ++i) {
      std::string key = "tail" + std::to_string(i);
      ASSERT_TRUE((*kv)->Put(key, "after-ckpt").ok());
      ref[key] = "after-ckpt";
    }
    ASSERT_TRUE((*kv)->pager()->wal()->Sync().ok());
  }
  auto reopened = PagedBTreeKv::Open(&fs, "kv.db", "kv.wal", opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT((*reopened)->pager()->recovered_records(), 0u);
  for (const auto& [k, v] : ref) {
    std::string got;
    ASSERT_TRUE((*reopened)->Get(k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ((*reopened)->Count(), ref.size());
}

TEST(PagedBTreeKvTest, LargeValuesRoundTripThroughOverflowChains) {
  storage::MemFileSystem fs;
  storage::PagerOptions opts;
  opts.cache_pages = 32;
  auto kv = PagedBTreeKv::Open(&fs, "kv.db", "kv.wal", opts);
  ASSERT_TRUE(kv.ok());
  std::string big(3 * 4096 + 57, 'x');
  for (size_t i = 0; i < big.size(); ++i) big[i] = char('a' + i % 26);
  ASSERT_TRUE((*kv)->Put("big", big).ok());
  ASSERT_TRUE((*kv)->Put("small", "s").ok());
  std::string got;
  ASSERT_TRUE((*kv)->Get("big", &got).ok());
  EXPECT_EQ(got, big);
  // Overwrite shrinks it back inline; the old chain must not resurface.
  ASSERT_TRUE((*kv)->Put("big", "tiny").ok());
  ASSERT_TRUE((*kv)->Get("big", &got).ok());
  EXPECT_EQ(got, "tiny");
}

TEST(BTreeKvTest, ReportsTransactionalIsolation) {
  BTreeKv kv;
  EXPECT_TRUE(kv.SupportsTransactionalIsolation());
  EXPECT_EQ(kv.name(), "btree");
}

TEST(BTreeKvTest, ManySequentialInsertsSurviveSplitChains) {
  BTreeKv kv(/*fanout=*/4);
  for (int i = 0; i < 2000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%06d", i);
    ASSERT_TRUE(kv.Put(buf, std::to_string(i)).ok());
  }
  EXPECT_EQ(kv.Count(), 2000u);
  std::string v;
  ASSERT_TRUE(kv.Get("001234", &v).ok());
  EXPECT_EQ(v, "1234");
}

TEST(BTreeKvTest, ConcurrentReadersWithWriterStayConsistent) {
  BTreeKv kv;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(kv.Put("stable" + std::to_string(i), "v").ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 1000;
    while (!stop) kv.Put("new" + std::to_string(i++), "w");
  });
  for (int r = 0; r < 2000; ++r) {
    std::string v;
    ASSERT_TRUE(kv.Get("stable" + std::to_string(r % 1000), &v).ok());
    EXPECT_EQ(v, "v");
  }
  stop = true;
  writer.join();
}

TEST(LsmKvTest, NoTransactionalIsolationAdvertised) {
  LsmKv kv;
  EXPECT_FALSE(kv.SupportsTransactionalIsolation());
  EXPECT_EQ(kv.name(), "lsm");
}

TEST(LsmKvTest, FlushAndCompactionPreserveData) {
  LsmOptions opts;
  opts.memtable_bytes = 512;
  opts.max_runs = 2;
  LsmKv kv(opts);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(kv.Put("k" + std::to_string(i), std::string(30, 'a')).ok());
  }
  EXPECT_GT(kv.compactions_run(), 0u);
  std::string v;
  ASSERT_TRUE(kv.Get("k250", &v).ok());
  EXPECT_EQ(kv.Count(), 500u);
}

TEST(LsmKvTest, TombstonesSurviveFlushAndDropOnCompaction) {
  LsmOptions opts;
  opts.memtable_bytes = 1 << 20;
  opts.max_runs = 2;
  LsmKv kv(opts);
  ASSERT_TRUE(kv.Put("gone", "x").ok());
  kv.Flush();
  ASSERT_TRUE(kv.Delete("gone").ok());
  kv.Flush();
  std::string v;
  EXPECT_TRUE(kv.Get("gone", &v).IsNotFound());
  EXPECT_EQ(kv.Count(), 0u);
}

TEST(KeyCodecTest, U64OrderPreserving) {
  std::string a, b;
  keycodec::AppendU64(&a, 5);
  keycodec::AppendU64(&b, 300);
  EXPECT_LT(a, b);
  std::string_view view(a);
  uint64_t v;
  ASSERT_TRUE(keycodec::DecodeU64(&view, &v));
  EXPECT_EQ(v, 5u);
  EXPECT_TRUE(view.empty());
}

TEST(KeyCodecTest, StringEscapingRoundTripsAndOrders) {
  std::string a, b, c;
  keycodec::AppendString(&a, "a");
  keycodec::AppendString(&b, "aa");
  keycodec::AppendString(&c, "b");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);

  std::string with_nul;
  keycodec::AppendString(&with_nul, std::string("x\0y", 3));
  std::string_view view(with_nul);
  std::string decoded;
  ASSERT_TRUE(keycodec::DecodeString(&view, &decoded));
  EXPECT_EQ(decoded, std::string("x\0y", 3));
}

TEST(KeyCodecTest, CompositeKeysDecodeInOrder) {
  std::string key;
  keycodec::AppendByte(&key, 'E');
  keycodec::AppendU64(&key, 42);
  keycodec::AppendString(&key, "knows");
  std::string_view view(key);
  uint8_t tag;
  uint64_t vid;
  std::string label;
  ASSERT_TRUE(keycodec::DecodeByte(&view, &tag));
  ASSERT_TRUE(keycodec::DecodeU64(&view, &vid));
  ASSERT_TRUE(keycodec::DecodeString(&view, &label));
  EXPECT_EQ(tag, 'E');
  EXPECT_EQ(vid, 42u);
  EXPECT_EQ(label, "knows");
}

TEST(KeyCodecTest, DecodersRejectTruncation) {
  std::string_view empty;
  uint64_t v;
  uint8_t b;
  std::string s;
  EXPECT_FALSE(keycodec::DecodeU64(&empty, &v));
  EXPECT_FALSE(keycodec::DecodeByte(&empty, &b));
  std::string_view unterminated("abc");
  EXPECT_FALSE(keycodec::DecodeString(&unterminated, &s));
}

}  // namespace
}  // namespace graphbench
