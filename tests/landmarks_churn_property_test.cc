// Churn-equivalence harness for the landmark index (the §9 acceptance
// property): for every SUT configuration, a single writer applies random
// KNOWS insert/delete churn through Sut::Apply while concurrent reader
// threads hammer ShortestPathLen; after every write batch the landmark
// answers must equal a plain-BFS oracle over the test's own edge multiset.
// Run under TSan/ASan this also proves the one-writer/many-readers
// discipline of the index (shared_mutex + relaxed stat atomics) is clean.
// Across the eight configurations the writer applies >10k write ops.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "snb/datagen.h"
#include "sut/sut.h"
#include "util/random.h"

namespace graphbench {
namespace {

constexpr int kBatches = 26;
constexpr int kOpsPerBatch = 50;  // 26*50*8 kinds = 10,400 write ops total
constexpr int kReaderThreads = 2;
constexpr int kChecksPerBatch = 10;

// Plain BFS over the test-maintained edge set: the oracle.
int OracleBfs(const std::map<int64_t, std::set<int64_t>>& adj, int64_t from,
              int64_t to) {
  if (from == to) return 0;
  std::set<int64_t> visited{from};
  std::deque<int64_t> frontier{from};
  std::map<int64_t, int> dist;
  dist[from] = 0;
  while (!frontier.empty()) {
    int64_t v = frontier.front();
    frontier.pop_front();
    auto it = adj.find(v);
    if (it == adj.end()) continue;
    for (int64_t n : it->second) {
      if (!visited.insert(n).second) continue;
      dist[n] = dist[v] + 1;
      if (n == to) return dist[n];
      frontier.push_back(n);
    }
  }
  return -1;
}

class LandmarksChurnPropertyTest : public ::testing::TestWithParam<SutKind> {
};

TEST_P(LandmarksChurnPropertyTest, ChurnKeepsLandmarkAnswersExact) {
  snb::DatagenOptions tiny;
  tiny.num_persons = 50;
  tiny.seed = 2024;
  tiny.max_degree = 12;
  snb::Dataset data = snb::Generate(tiny);

  std::unique_ptr<Sut> sut =
      MakeSut(GetParam(), SutOptions{.landmarks = true});
  ASSERT_TRUE(sut->landmarks_enabled()) << sut->name();
  Status loaded = sut->Load(data);
  ASSERT_TRUE(loaded.ok()) << sut->name() << ": " << loaded.ToString();

  std::vector<int64_t> ids;
  for (const auto& p : data.persons) ids.push_back(p.id);
  ASSERT_FALSE(ids.empty());

  // Oracle state: normalized (min,max) KNOWS pairs + adjacency. Datagen
  // guarantees the snapshot has no duplicate pairs or self-loops.
  std::set<std::pair<int64_t, int64_t>> present;
  std::map<int64_t, std::set<int64_t>> adj;
  for (const auto& k : data.knows) {
    present.emplace(k.person1, k.person2);
    adj[k.person1].insert(k.person2);
    adj[k.person2].insert(k.person1);
  }

  // Concurrent readers: pure ShortestPathLen traffic racing the writer.
  // Answers race with in-flight writes, so only the status is checked;
  // exactness is asserted on the main thread between batches.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(uint64_t(9000 + t));
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t a = ids[rng.Uniform(ids.size())];
        int64_t b = ids[rng.Uniform(ids.size())];
        if (!sut->ShortestPathLen(a, b).ok()) {
          reader_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Rng rng(777);
  int applied = 0;
  for (int batch = 0; batch < kBatches; ++batch) {
    for (int op_i = 0; op_i < kOpsPerBatch; ++op_i) {
      snb::UpdateOp op;
      const bool remove = !present.empty() && rng.Uniform(2) == 0;
      if (remove) {
        auto it = present.begin();
        std::advance(it, long(rng.Uniform(present.size())));
        auto [a, b] = *it;
        present.erase(it);
        adj[a].erase(b);
        adj[b].erase(a);
        op.kind = snb::UpdateOp::Kind::kRemoveFriendship;
        op.knows.person1 = a;
        op.knows.person2 = b;
      } else {
        int64_t a = ids[rng.Uniform(ids.size())];
        int64_t b = ids[rng.Uniform(ids.size())];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        if (!present.emplace(a, b).second) continue;  // already friends
        adj[a].insert(b);
        adj[b].insert(a);
        op.kind = snb::UpdateOp::Kind::kAddFriendship;
        op.knows.person1 = a;
        op.knows.person2 = b;
        op.knows.creation_date = 1000000 + applied;
      }
      Status s = sut->Apply(op);
      ASSERT_TRUE(s.ok()) << sut->name() << " batch " << batch << " op "
                          << op_i << " kind " << int(op.kind) << ": "
                          << s.ToString();
      ++applied;
    }

    // Writer quiesced: the index must now agree with the oracle exactly
    // (readers keep running — concurrent shared-lock reads are part of
    // the property being tested).
    for (int check = 0; check < kChecksPerBatch; ++check) {
      int64_t a = ids[rng.Uniform(ids.size())];
      int64_t b = ids[rng.Uniform(ids.size())];
      auto r = sut->ShortestPathLen(a, b);
      ASSERT_TRUE(r.ok()) << sut->name();
      ASSERT_EQ(*r, OracleBfs(adj, a, b))
          << sut->name() << " batch " << batch << " pair " << a << "→" << b
          << " after " << applied << " writes";
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(reader_errors.load(), 0u) << sut->name();
  EXPECT_GT(applied, 1000) << "churn volume too small to mean anything";

  // The invalidation machinery must actually have run.
  LandmarkStats stats = sut->landmark_stats();
  EXPECT_GT(stats.repairs + stats.rebuilds, 1u) << sut->name();
  EXPECT_GT(stats.hits + stats.pruned_searches, 0u) << sut->name();
}

INSTANTIATE_TEST_SUITE_P(AllSuts, LandmarksChurnPropertyTest,
                         ::testing::ValuesIn(AllSutKinds()),
                         [](const ::testing::TestParamInfo<SutKind>& info) {
                           std::string name = SutKindName(info.param);
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

}  // namespace
}  // namespace graphbench
