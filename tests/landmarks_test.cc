// Unit tests for the landmark index (DESIGN.md §9): triangle-inequality
// bound math, degree-based hub selection, unreachable pairs, self paths,
// epoch/invalidation bookkeeping, and incremental-repair equivalence with
// a plain BFS oracle. The SUT-level equivalence lives in
// sut_equivalence_test.cc and landmarks_churn_property_test.cc.

#include "graph/landmarks.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <set>
#include <utility>
#include <vector>

namespace graphbench {
namespace {

// Plain BFS over an explicit undirected edge list: the oracle.
int OracleBfs(int64_t num_vertices,
              const std::multiset<std::pair<int64_t, int64_t>>& edges,
              int64_t from, int64_t to) {
  if (from == to) return 0;
  std::vector<std::vector<int64_t>> adj(static_cast<size_t>(num_vertices));
  for (const auto& [a, b] : edges) {
    adj[size_t(a)].push_back(b);
    adj[size_t(b)].push_back(a);
  }
  std::vector<int> dist(static_cast<size_t>(num_vertices), -1);
  dist[size_t(from)] = 0;
  std::deque<int64_t> queue{from};
  while (!queue.empty()) {
    int64_t v = queue.front();
    queue.pop_front();
    for (int64_t n : adj[size_t(v)]) {
      if (dist[size_t(n)] >= 0) continue;
      dist[size_t(n)] = dist[size_t(v)] + 1;
      if (n == to) return dist[size_t(n)];
      queue.push_back(n);
    }
  }
  return -1;
}

// LandmarkIndex holds a shared_mutex (immovable), so seed in place.
void SeedPath(LandmarkIndex* index, int n) {
  for (int i = 0; i < n; ++i) index->AddPerson(i);
  for (int i = 0; i + 1 < n; ++i) index->AddEdge(i, i + 1);
  index->Build();
}

TEST(LandmarksTest, PathGraphExactDistances) {
  LandmarkIndex index;
  SeedPath(&index, 12);
  for (int64_t a = 0; a < 12; ++a) {
    for (int64_t b = 0; b < 12; ++b) {
      auto len = index.ShortestPathLen(a, b);
      ASSERT_TRUE(len.has_value());
      EXPECT_EQ(*len, int(std::abs(a - b))) << a << "→" << b;
    }
  }
}

TEST(LandmarksTest, SelfPathIsZero) {
  LandmarkIndex index;
  SeedPath(&index, 4);
  EXPECT_EQ(index.ShortestPathLen(2, 2), std::optional<int>(0));
}

TEST(LandmarksTest, UnknownPersonDeclines) {
  LandmarkIndex index;
  SeedPath(&index, 4);
  EXPECT_EQ(index.ShortestPathLen(0, 99), std::nullopt);
  EXPECT_EQ(index.ShortestPathLen(99, 0), std::nullopt);
  EXPECT_EQ(index.BoundsFor(0, 99), std::nullopt);
  EXPECT_GT(index.stats().fallbacks, 0u);
}

TEST(LandmarksTest, BoundsSandwichTrueDistance) {
  // On a path graph the landmark vectors make LB == UB == |a-b| for every
  // pair (any landmark L has |d(L,a)-d(L,b)| == |a-b|).
  LandmarkIndex index;
  SeedPath(&index, 9);
  for (int64_t a = 0; a < 9; ++a) {
    for (int64_t b = 0; b < 9; ++b) {
      auto bounds = index.BoundsFor(a, b);
      ASSERT_TRUE(bounds.has_value());
      EXPECT_FALSE(bounds->disconnected);
      EXPECT_LE(bounds->lower, int(std::abs(a - b)));
      ASSERT_GE(bounds->upper, 0);
      EXPECT_GE(bounds->upper, int(std::abs(a - b)));
      EXPECT_EQ(bounds->lower, bounds->upper);
    }
  }
  // Every pair should therefore be a bound hit — zero searches.
  EXPECT_EQ(index.stats().pruned_searches, 0u);
}

TEST(LandmarksTest, HubSelectionPrefersHighDegree) {
  // Star: vertex 0 has degree 6, leaves have degree 1.
  LandmarkIndex index(LandmarkOptions{.num_landmarks = 2});
  for (int i = 0; i < 7; ++i) index.AddPerson(i);
  for (int i = 1; i < 7; ++i) index.AddEdge(0, i);
  index.Build();
  std::vector<int64_t> hubs = index.landmark_ids();
  ASSERT_EQ(hubs.size(), 2u);
  EXPECT_EQ(hubs[0], 0) << "highest-degree person must be the first hub";
}

TEST(LandmarksTest, DisconnectedComponentsAnswerMinusOne) {
  LandmarkIndex index;
  for (int i = 0; i < 6; ++i) index.AddPerson(i);
  index.AddEdge(0, 1);
  index.AddEdge(1, 2);
  index.AddEdge(3, 4);  // {3,4,5 isolated-ish} second component
  index.Build();
  EXPECT_EQ(index.ShortestPathLen(0, 4), std::optional<int>(-1));
  EXPECT_EQ(index.ShortestPathLen(2, 5), std::optional<int>(-1));
  auto bounds = index.BoundsFor(0, 3);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_TRUE(bounds->disconnected);
}

TEST(LandmarksTest, EpochAdvancesOnEveryWrite) {
  LandmarkIndex index;
  SeedPath(&index, 5);
  uint64_t e0 = index.epoch();
  index.OnPersonAdded(100);
  EXPECT_GT(index.epoch(), e0);
  uint64_t e1 = index.epoch();
  index.OnEdgeAdded(4, 100);
  EXPECT_GT(index.epoch(), e1);
  uint64_t e2 = index.epoch();
  index.OnEdgeRemoved(4, 100);
  EXPECT_GT(index.epoch(), e2);
}

TEST(LandmarksTest, InsertRepairKeepsAnswersExact) {
  LandmarkIndex index;
  SeedPath(&index, 10);
  uint64_t rebuilds_before = index.stats().rebuilds;
  // Shortcut edge 0—9 collapses the diameter; repair must propagate.
  index.OnEdgeAdded(0, 9);
  EXPECT_EQ(index.ShortestPathLen(0, 9), std::optional<int>(1));
  EXPECT_EQ(index.ShortestPathLen(1, 9), std::optional<int>(2));
  EXPECT_EQ(index.ShortestPathLen(4, 5), std::optional<int>(1));
  EXPECT_EQ(index.stats().rebuilds, rebuilds_before)
      << "a single unit-decrease should repair, not rebuild";
  EXPECT_GT(index.stats().repairs, 0u);
}

TEST(LandmarksTest, RemoveRepairKeepsAnswersExact) {
  LandmarkIndex index;
  SeedPath(&index, 10);
  // Cutting 4—5 splits the path into two components.
  index.OnEdgeRemoved(4, 5);
  EXPECT_EQ(index.ShortestPathLen(0, 4), std::optional<int>(4));
  EXPECT_EQ(index.ShortestPathLen(5, 9), std::optional<int>(4));
  EXPECT_EQ(index.ShortestPathLen(0, 9), std::optional<int>(-1));
  EXPECT_EQ(index.ShortestPathLen(4, 5), std::optional<int>(-1));
}

TEST(LandmarksTest, ExhaustedRepairBudgetTriggersRebuild) {
  LandmarkIndex index(LandmarkOptions{.num_landmarks = 2,
                                      .repair_budget = 0});
  for (int i = 0; i < 8; ++i) index.AddPerson(i);
  for (int i = 0; i + 1 < 8; ++i) index.AddEdge(i, i + 1);
  index.Build();
  uint64_t rebuilds_before = index.stats().rebuilds;
  uint64_t built_before = index.built_epoch();
  index.OnEdgeAdded(0, 7);  // budget 0: every repair overflows
  EXPECT_GT(index.stats().rebuilds, rebuilds_before);
  EXPECT_GT(index.built_epoch(), built_before);
  EXPECT_EQ(index.ShortestPathLen(1, 7), std::optional<int>(2));
}

TEST(LandmarksTest, ChurnThresholdForcesRebuild) {
  LandmarkIndex index(LandmarkOptions{.rebuild_churn_threshold = 3});
  for (int i = 0; i < 6; ++i) index.AddPerson(i);
  for (int i = 0; i + 1 < 6; ++i) index.AddEdge(i, i + 1);
  index.Build();
  uint64_t rebuilds_before = index.stats().rebuilds;
  index.OnEdgeAdded(0, 2);
  index.OnEdgeAdded(0, 3);
  index.OnEdgeAdded(0, 4);  // third write since build crosses the threshold
  EXPECT_GT(index.stats().rebuilds, rebuilds_before);
}

TEST(LandmarksTest, ParallelEdgeRemovalKeepsDistance) {
  LandmarkIndex index;
  for (int i = 0; i < 3; ++i) index.AddPerson(i);
  index.AddEdge(0, 1);
  index.AddEdge(0, 1);  // parallel edge
  index.AddEdge(1, 2);
  index.Build();
  index.OnEdgeRemoved(0, 1);  // one copy survives
  EXPECT_EQ(index.ShortestPathLen(0, 2), std::optional<int>(2));
  index.OnEdgeRemoved(0, 1);  // now actually disconnected
  EXPECT_EQ(index.ShortestPathLen(0, 2), std::optional<int>(-1));
}

// Hub-and-spoke core with long periphery chains: the worst case for
// degree-picked hubs, the motivating case for coverage selection.
// Vertices 0..4 form a clique (degree ≥ 4); three chains of 6 vertices
// each hang off clique members 0, 1 and 2. With K=3 every degree-picked
// hub sits inside the clique, so chain-tip pairs only get bounds routed
// through the core; coverage's farthest-point sweep pushes hubs out to
// the chain tips where the slack actually is.
void SeedCliqueWithChains(LandmarkIndex* index) {
  const int kClique = 5, kChainLen = 6, kChains = 3;
  int n = kClique + kChains * kChainLen;  // 23 vertices
  for (int i = 0; i < n; ++i) index->AddPerson(i);
  for (int a = 0; a < kClique; ++a) {
    for (int b = a + 1; b < kClique; ++b) index->AddEdge(a, b);
  }
  for (int c = 0; c < kChains; ++c) {
    int prev = c;  // chain c anchors at clique vertex c
    for (int j = 0; j < kChainLen; ++j) {
      int v = kClique + c * kChainLen + j;
      index->AddEdge(prev, v);
      prev = v;
    }
  }
  index->Build();
}

TEST(LandmarksTest, CoverageSelectionTightensPeripheryBounds) {
  LandmarkIndex degree(LandmarkOptions{
      .num_landmarks = 3, .hub_selection = HubSelection::kDegree});
  LandmarkIndex coverage(LandmarkOptions{
      .num_landmarks = 3, .hub_selection = HubSelection::kCoverage});
  SeedCliqueWithChains(&degree);
  SeedCliqueWithChains(&coverage);

  // Coverage hubs must spread: after the first (degree) pick, at most
  // two of the three can sit inside the 5-vertex clique.
  std::vector<int64_t> hubs = coverage.landmark_ids();
  ASSERT_EQ(hubs.size(), 3u);
  int in_clique = 0;
  for (int64_t h : hubs) in_clique += h < 5 ? 1 : 0;
  EXPECT_LE(in_clique, 2) << "farthest-point picks must leave the core";

  // Both selections stay exact (bounds sandwich, search fills the gap)…
  int64_t tip_a = 5 + 6 - 1, tip_b = 5 + 2 * 6 - 1;  // tips of chains 0, 1
  auto via_degree = degree.ShortestPathLen(tip_a, tip_b);
  auto via_coverage = coverage.ShortestPathLen(tip_a, tip_b);
  ASSERT_TRUE(via_degree.has_value());
  EXPECT_EQ(via_degree, via_coverage);
  EXPECT_EQ(*via_coverage, 13) << "6 up + core hop + 6 down";

  // …but coverage's bounds are strictly tighter in aggregate over the
  // all-pairs UB−LB slack, the quantity that decides hit-vs-search.
  auto total_slack = [](const LandmarkIndex& index) {
    int64_t slack = 0;
    for (int64_t a = 0; a < 23; ++a) {
      for (int64_t b = a + 1; b < 23; ++b) {
        auto bounds = index.BoundsFor(a, b);
        EXPECT_TRUE(bounds.has_value());
        EXPECT_GE(bounds->upper, bounds->lower);
        slack += bounds->upper - bounds->lower;
      }
    }
    return slack;
  };
  EXPECT_LT(total_slack(coverage), total_slack(degree));
}

TEST(LandmarksTest, CoverageCoversSecondaryComponentFirst) {
  // Big component (path of 8) + small component (path of 3): unreachable
  // counts as infinitely far, so the small component must receive a hub
  // before the big one gets its second.
  LandmarkIndex index(LandmarkOptions{
      .num_landmarks = 2, .hub_selection = HubSelection::kCoverage});
  for (int i = 0; i < 11; ++i) index.AddPerson(i);
  for (int i = 0; i + 1 < 8; ++i) index.AddEdge(i, i + 1);
  index.AddEdge(8, 9);
  index.AddEdge(9, 10);
  index.Build();
  std::vector<int64_t> hubs = index.landmark_ids();
  ASSERT_EQ(hubs.size(), 2u);
  bool small_has_hub = hubs[0] >= 8 || hubs[1] >= 8;
  EXPECT_TRUE(small_has_hub);
  // With a hub in each component, cross-component pairs are bound hits.
  uint64_t searches_before = index.stats().pruned_searches;
  EXPECT_EQ(index.ShortestPathLen(3, 9), std::optional<int>(-1));
  EXPECT_EQ(index.stats().pruned_searches, searches_before);
}

TEST(LandmarksTest, RandomChurnMatchesOracle) {
  std::mt19937_64 rng(4242);
  const int64_t kN = 60;
  LandmarkIndex index(LandmarkOptions{.num_landmarks = 4,
                                      .repair_budget = 64});
  std::multiset<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i < kN; ++i) index.AddPerson(i);
  for (int i = 0; i < 120; ++i) {
    int64_t a = int64_t(rng() % kN), b = int64_t(rng() % kN);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    index.AddEdge(a, b);
    edges.emplace(a, b);
  }
  index.Build();
  for (int step = 0; step < 400; ++step) {
    if (!edges.empty() && rng() % 2 == 0) {
      auto it = edges.begin();
      std::advance(it, long(rng() % edges.size()));
      auto [a, b] = *it;
      edges.erase(it);
      index.OnEdgeRemoved(a, b);
    } else {
      int64_t a = int64_t(rng() % kN), b = int64_t(rng() % kN);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      index.OnEdgeAdded(a, b);
      edges.emplace(a, b);
    }
  }
  // Spot-check a grid of pairs against the oracle.
  for (int64_t a = 0; a < kN; a += 7) {
    for (int64_t b = 0; b < kN; b += 5) {
      auto len = index.ShortestPathLen(a, b);
      ASSERT_TRUE(len.has_value());
      EXPECT_EQ(*len, OracleBfs(kN, edges, a, b)) << a << "→" << b;
    }
  }
}

}  // namespace
}  // namespace graphbench
