#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace graphbench {
namespace {

std::vector<Token> Lex(std::string_view text, LexerOptions options = {}) {
  std::vector<Token> tokens;
  Status s = Tokenize(text, options, &tokens);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return tokens;
}

TEST(LexerTest, IdentifiersNumbersStrings) {
  auto tokens = Lex("SELECT name, 42, -3, 2.5, 'it''s' FROM t");
  // 'it''s' lexes as two adjacent strings; just verify core kinds.
  EXPECT_EQ(tokens[0].kind, Token::Kind::kIdentifier);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].text, "name");
  EXPECT_TRUE(tokens[2].IsPunct(","));
  EXPECT_EQ(tokens[3].kind, Token::Kind::kInteger);
  EXPECT_EQ(tokens[3].literal.as_int(), 42);
}

TEST(LexerTest, NegativeNumbersAfterPunct) {
  auto tokens = Lex("= -5");
  EXPECT_TRUE(tokens[0].IsPunct("="));
  EXPECT_EQ(tokens[1].kind, Token::Kind::kInteger);
  EXPECT_EQ(tokens[1].literal.as_int(), -5);
}

TEST(LexerTest, FloatVsMemberAccess) {
  auto tokens = Lex("a.b 2.5");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_TRUE(tokens[1].IsPunct("."));
  EXPECT_EQ(tokens[2].text, "b");
  EXPECT_EQ(tokens[3].kind, Token::Kind::kFloat);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("<> <= >= != -> <-");
  EXPECT_TRUE(tokens[0].IsPunct("<>"));
  EXPECT_TRUE(tokens[1].IsPunct("<="));
  EXPECT_TRUE(tokens[2].IsPunct(">="));
  EXPECT_TRUE(tokens[3].IsPunct("!="));
  EXPECT_TRUE(tokens[4].IsPunct("->"));
  EXPECT_TRUE(tokens[5].IsPunct("<-"));
}

TEST(LexerTest, ParamsAndVariables) {
  auto sql = Lex("? $name");
  EXPECT_EQ(sql[0].kind, Token::Kind::kParam);
  EXPECT_TRUE(sql[0].text.empty());
  EXPECT_EQ(sql[1].kind, Token::Kind::kParam);
  EXPECT_EQ(sql[1].text, "name");

  LexerOptions sparql;
  sparql.question_mark_is_variable = true;
  auto tokens = Lex("?x ?", sparql);
  EXPECT_EQ(tokens[0].kind, Token::Kind::kVariable);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].kind, Token::Kind::kParam);  // bare ? stays a param
}

TEST(LexerTest, PrefixedNamesWithColonOption) {
  LexerOptions sparql;
  sparql.colon_in_identifiers = true;
  auto tokens = Lex("snb:knows", sparql);
  EXPECT_EQ(tokens[0].kind, Token::Kind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "snb:knows");

  auto sql = Lex("snb:knows");
  EXPECT_EQ(sql[0].text, "snb");
  EXPECT_TRUE(sql[1].IsPunct(":"));
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex("'a\\'b' \"c\\\"d\"");
  EXPECT_EQ(tokens[0].literal.as_string(), "a'b");
  EXPECT_EQ(tokens[1].literal.as_string(), "c\"d");
}

TEST(LexerTest, UnterminatedStringFails) {
  std::vector<Token> tokens;
  EXPECT_TRUE(Tokenize("'oops", {}, &tokens).IsInvalidArgument());
}

TEST(LexerTest, CursorHelpers) {
  auto tokens = Lex("MATCH ( x )");
  TokenCursor cur(&tokens);
  EXPECT_TRUE(cur.TryKeyword("match"));
  EXPECT_FALSE(cur.TryKeyword("RETURN"));
  EXPECT_TRUE(cur.ExpectPunct("(").ok());
  EXPECT_EQ(cur.Advance().text, "x");
  EXPECT_TRUE(cur.ExpectPunct(")").ok());
  EXPECT_TRUE(cur.AtEnd());
  EXPECT_TRUE(cur.ExpectPunct("(").IsInvalidArgument());
}

}  // namespace
}  // namespace graphbench
