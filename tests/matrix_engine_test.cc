// Unit tests for the linear-algebra engine (DESIGN.md §10): delta-CSR
// invariants (boolean dedup, sorted overlay, merge threshold, undirected
// symmetry), SpMV-vs-pointer-chasing BFS agreement with an oracle, masked
// two-hop semantics, columnar side-table reads, and the one-writer /
// many-readers locking discipline (the case the TSan CI job exercises).
// SUT-level equivalence lives in sut_equivalence_test.cc; the landmark
// interaction in landmarks_churn_property_test.cc.

#include "engines/matrix/matrix_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "engines/matrix/delta_csr.h"
#include "snb/datagen.h"

namespace graphbench {
namespace {

std::vector<int32_t> RowOf(const DeltaCsrMatrix& m, int32_t row) {
  std::vector<int32_t> out;
  m.ForEachInRow(row, [&](int32_t c) { out.push_back(c); });
  return out;
}

TEST(DeltaCsrTest, AddRemoveRoundTripsThroughOverlay) {
  DeltaCsrMatrix m(DeltaCsrOptions{.merge_threshold = 1000000});
  for (int i = 0; i < 5; ++i) m.AddRow();
  EXPECT_TRUE(m.AddEdge(0, 1));
  EXPECT_TRUE(m.AddEdge(0, 3));
  EXPECT_FALSE(m.AddEdge(0, 1)) << "boolean matrix collapses duplicates";
  EXPECT_FALSE(m.AddEdge(1, 0)) << "symmetric slot already present";
  EXPECT_TRUE(m.Contains(0, 1));
  EXPECT_TRUE(m.Contains(1, 0)) << "undirected: both slots set";
  EXPECT_EQ(m.RowDegree(0), 2u);
  EXPECT_EQ((std::vector<int32_t>{1, 3}), RowOf(m, 0));

  EXPECT_TRUE(m.RemoveEdge(1, 0));
  EXPECT_FALSE(m.RemoveEdge(0, 1)) << "already removed";
  EXPECT_FALSE(m.Contains(0, 1));
  EXPECT_FALSE(m.Contains(1, 0));
  EXPECT_EQ(m.RowDegree(1), 0u);
  EXPECT_EQ(m.stats().nnz, 2u) << "one undirected edge = two slots";
}

TEST(DeltaCsrTest, SelfLoopsAndOutOfRangeRejected) {
  DeltaCsrMatrix m;
  m.AddRow();
  m.AddRow();
  EXPECT_FALSE(m.AddEdge(0, 0));
  EXPECT_FALSE(m.AddEdge(0, 7));
  EXPECT_FALSE(m.AddEdge(-1, 0));
  EXPECT_FALSE(m.Contains(0, 9));
}

TEST(DeltaCsrTest, DeleteFromCsrBodyThenReinsert) {
  DeltaCsrMatrix m(DeltaCsrOptions{.merge_threshold = 1000000});
  m.Build({{1, 2}, {0}, {0}});
  EXPECT_TRUE(m.RemoveEdge(0, 1));
  EXPECT_FALSE(m.Contains(0, 1));
  EXPECT_EQ((std::vector<int32_t>{2}), RowOf(m, 0));
  EXPECT_GT(m.stats().pending_delta, 0u) << "delete parked in the overlay";
  // Re-insert: must cancel the pending delete, not create an overlay add.
  EXPECT_TRUE(m.AddEdge(0, 1));
  EXPECT_TRUE(m.Contains(0, 1));
  EXPECT_EQ((std::vector<int32_t>{1, 2}), RowOf(m, 0));
  EXPECT_EQ(m.stats().pending_delta, 0u);
}

TEST(DeltaCsrTest, MergeThresholdFoldsOverlayIntoCsr) {
  DeltaCsrMatrix m(DeltaCsrOptions{.merge_threshold = 4});
  for (int i = 0; i < 6; ++i) m.AddRow();
  uint64_t merges_before = m.stats().delta_merges;
  m.AddEdge(0, 1);  // 2 pending slots
  EXPECT_EQ(m.stats().delta_merges, merges_before);
  m.AddEdge(2, 3);  // 4 pending: crosses the threshold
  EXPECT_EQ(m.stats().delta_merges, merges_before + 1);
  EXPECT_EQ(m.stats().pending_delta, 0u);
  // Merged content intact, and the folded CSR row is sorted.
  m.AddEdge(0, 5);
  m.AddEdge(0, 3);
  m.MergeDelta();
  EXPECT_EQ((std::vector<int32_t>{1, 3, 5}), RowOf(m, 0));
  EXPECT_TRUE(m.Contains(2, 3));
}

TEST(DeltaCsrTest, RandomChurnMatchesSetOracle) {
  std::mt19937_64 rng(77);
  constexpr int32_t kN = 24;
  // Threshold 16 so the churn repeatedly crosses merge boundaries.
  DeltaCsrMatrix m(DeltaCsrOptions{.merge_threshold = 16});
  for (int32_t i = 0; i < kN; ++i) m.AddRow();
  std::set<std::pair<int32_t, int32_t>> oracle;
  for (int step = 0; step < 2000; ++step) {
    int32_t a = int32_t(rng() % kN);
    int32_t b = int32_t(rng() % kN);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (rng() % 2 == 0) {
      EXPECT_EQ(m.AddEdge(a, b), oracle.emplace(a, b).second);
    } else {
      EXPECT_EQ(m.RemoveEdge(a, b), oracle.erase({a, b}) > 0);
    }
  }
  EXPECT_GT(m.stats().delta_merges, 0u);
  for (int32_t r = 0; r < kN; ++r) {
    std::set<int32_t> expected;
    for (const auto& [a, b] : oracle) {
      if (a == r) expected.insert(b);
      if (b == r) expected.insert(a);
    }
    std::vector<int32_t> row = RowOf(m, r);
    EXPECT_EQ(std::set<int32_t>(row.begin(), row.end()), expected)
        << "row " << r;
    EXPECT_EQ(row.size(), expected.size()) << "row " << r << " duplicates";
  }
}

// ---------------------------------------------------------------------------

snb::Dataset TinyDataset() {
  snb::DatagenOptions o;
  o.num_persons = 70;
  o.seed = 4321;
  o.max_degree = 14;
  return snb::Generate(o);
}

std::set<int64_t> IdColumn(const QueryResult& r) {
  std::set<int64_t> out;
  for (const Row& row : r.rows) out.insert(row[0].as_int());
  return out;
}

TEST(MatrixEngineTest, SpmvAndPointerChasingBfsAgree) {
  snb::Dataset data = TinyDataset();
  MatrixEngine spmv(MatrixEngineOptions{.bfs = MatrixBfsKind::kSpmv});
  MatrixEngine chase(
      MatrixEngineOptions{.bfs = MatrixBfsKind::kPointerChasing});
  ASSERT_TRUE(spmv.Load(data).ok());
  ASSERT_TRUE(chase.Load(data).ok());
  for (size_t i = 0; i + 5 < data.persons.size(); i += 5) {
    int64_t a = data.persons[i].id;
    int64_t b = data.persons[i + 5].id;
    EXPECT_EQ(spmv.ShortestPathLen(a, b), chase.ShortestPathLen(a, b))
        << a << "→" << b;
  }
  EXPECT_EQ(spmv.ShortestPathLen(data.persons[0].id, data.persons[0].id), 0);
  EXPECT_EQ(spmv.ShortestPathLen(data.persons[0].id, 999999999), -1)
      << "unknown person is unreachable";
  EXPECT_GT(spmv.stats().spmv_rows, 0u);
}

TEST(MatrixEngineTest, TwoHopMasksOnlySelf) {
  // Triangle 0-1-2 plus pendant 3 off vertex 2: two-hop of 0 includes its
  // direct friends 1 and 2 (reachable through each other) and 3, but
  // never 0 itself.
  snb::Dataset data;
  for (int64_t id = 0; id < 4; ++id) {
    snb::Person p;
    p.id = 100 + id;
    p.first_name = "P" + std::to_string(id);
    data.persons.push_back(p);
  }
  auto knows = [&data](int64_t a, int64_t b) {
    snb::Knows k;
    k.person1 = 100 + a;
    k.person2 = 100 + b;
    data.knows.push_back(k);
  };
  knows(0, 1);
  knows(1, 2);
  knows(0, 2);
  knows(2, 3);
  MatrixEngine engine;
  ASSERT_TRUE(engine.Load(data).ok());
  EXPECT_EQ(IdColumn(engine.TwoHop(100)), (std::set<int64_t>{101, 102, 103}));
  // Pendant 3: only neighbor is 2, so two-hop is 2's other neighbors.
  EXPECT_EQ(IdColumn(engine.TwoHop(103)), (std::set<int64_t>{100, 101}));
}

TEST(MatrixEngineTest, ColumnarSideTablesAnswerPropertyReads) {
  snb::Dataset data = TinyDataset();
  MatrixEngine engine;
  ASSERT_TRUE(engine.Load(data).ok());

  const snb::Person& p = data.persons[3];
  QueryResult r = engine.PointLookup(p.id);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_string(), p.first_name);
  EXPECT_EQ(r.rows[0][1].as_string(), p.last_name);
  EXPECT_EQ(r.rows[0][3].as_int(), p.birthday);
  EXPECT_TRUE(engine.PointLookup(424242).rows.empty());

  // RecentPosts: newest-first and capped.
  for (const auto& post : data.posts) {
    QueryResult posts = engine.RecentPosts(post.creator, 3);
    ASSERT_LE(posts.rows.size(), 3u);
    for (size_t i = 1; i < posts.rows.size(); ++i) {
      EXPECT_GE(posts.rows[i - 1][2].as_int(), posts.rows[i][2].as_int());
    }
    break;
  }

  // TopPosters: ranked count desc then id asc, counts exact.
  std::map<int64_t, int64_t> counts;
  for (const auto& post : data.posts) ++counts[post.creator];
  QueryResult top = engine.TopPosters(3);
  ASSERT_LE(top.rows.size(), 3u);
  for (size_t i = 0; i < top.rows.size(); ++i) {
    EXPECT_EQ(top.rows[i][1].as_int(), counts[top.rows[i][0].as_int()]);
    if (i > 0) {
      int64_t prev = top.rows[i - 1][1].as_int();
      int64_t cur = top.rows[i][1].as_int();
      EXPECT_TRUE(prev > cur ||
                  (prev == cur &&
                   top.rows[i - 1][0].as_int() < top.rows[i][0].as_int()));
    }
  }
}

TEST(MatrixEngineTest, ApplyReportsWhetherKnowsChanged) {
  snb::Dataset data = TinyDataset();
  MatrixEngine engine;
  ASSERT_TRUE(engine.Load(data).ok());
  ASSERT_FALSE(data.knows.empty());
  const snb::Knows& k = data.knows[0];

  snb::UpdateOp add;
  add.kind = snb::UpdateOp::Kind::kAddFriendship;
  add.knows = k;
  bool changed = true;
  ASSERT_TRUE(engine.Apply(add, &changed).ok());
  EXPECT_FALSE(changed) << "duplicate friendship is a boolean no-op";

  snb::UpdateOp del;
  del.kind = snb::UpdateOp::Kind::kRemoveFriendship;
  del.knows = k;
  ASSERT_TRUE(engine.Apply(del, &changed).ok());
  EXPECT_TRUE(changed);
  EXPECT_FALSE(engine.Apply(del, &changed).ok()) << "edge already gone";
  EXPECT_FALSE(changed);

  ASSERT_TRUE(engine.Apply(add, &changed).ok());
  EXPECT_TRUE(changed) << "re-adding the removed friendship mutates";
}

TEST(MatrixEngineTest, ConcurrentReadersWithSingleWriter) {
  // The TSan target: reader threads sweep every query while one writer
  // churns friendships across merge boundaries (tiny threshold).
  snb::Dataset data = TinyDataset();
  MatrixEngine engine(
      MatrixEngineOptions{.csr = DeltaCsrOptions{.merge_threshold = 8}});
  ASSERT_TRUE(engine.Load(data).ok());
  std::vector<int64_t> ids;
  for (const auto& p : data.persons) ids.push_back(p.id);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(uint64_t(100 + t));
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t a = ids[rng() % ids.size()];
        int64_t b = ids[rng() % ids.size()];
        engine.OneHop(a);
        engine.TwoHop(b);
        engine.ShortestPathLen(a, b);
        engine.TopPosters(3);
      }
    });
  }

  std::mt19937_64 rng(999);
  std::set<std::pair<int64_t, int64_t>> present;
  for (const auto& k : data.knows) present.emplace(k.person1, k.person2);
  for (int step = 0; step < 600; ++step) {
    snb::UpdateOp op;
    op.knows.person1 = ids[rng() % ids.size()];
    op.knows.person2 = ids[rng() % ids.size()];
    if (op.knows.person1 == op.knows.person2) continue;
    if (op.knows.person1 > op.knows.person2) {
      std::swap(op.knows.person1, op.knows.person2);
    }
    auto key = std::pair(op.knows.person1, op.knows.person2);
    if (present.count(key)) {
      op.kind = snb::UpdateOp::Kind::kRemoveFriendship;
      present.erase(key);
    } else {
      op.kind = snb::UpdateOp::Kind::kAddFriendship;
      present.insert(key);
    }
    ASSERT_TRUE(engine.Apply(op).ok()) << "step " << step;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GT(engine.stats().delta_merges, 0u);
}

}  // namespace
}  // namespace graphbench
