#include "engines/native/native_graph.h"

#include <gtest/gtest.h>

#include "graph/value_codec.h"

namespace graphbench {
namespace {

NativeGraphOptions NoCheckpoint() {
  NativeGraphOptions o;
  o.checkpoint_interval_writes = 0;
  return o;
}

TEST(NativeGraphTest, AddAndGetVertex) {
  NativeGraph g(NoCheckpoint());
  auto v = g.AddVertex("Person", {{"id", Value(42)}, {"name", Value("Ada")}});
  ASSERT_TRUE(v.ok());
  std::string label;
  PropertyMap props;
  ASSERT_TRUE(g.GetVertex(*v, &label, &props).ok());
  EXPECT_EQ(label, "Person");
  EXPECT_EQ(props.Get("name").as_string(), "Ada");
  EXPECT_TRUE(g.GetVertex(999, nullptr, nullptr).IsNotFound());
}

TEST(NativeGraphTest, EdgesUpdateBothAdjacencyLists) {
  NativeGraph g(NoCheckpoint());
  VertexId a = *g.AddVertex("Person", {});
  VertexId b = *g.AddVertex("Person", {});
  auto e = g.AddEdge("knows", a, b, {{"since", Value(2017)}});
  ASSERT_TRUE(e.ok());

  auto out = g.Neighbors(a, "knows", Direction::kOut);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].vertex, b);

  auto in = g.Neighbors(b, "knows", Direction::kIn);
  ASSERT_TRUE(in.ok());
  ASSERT_EQ(in->size(), 1u);
  EXPECT_EQ((*in)[0].vertex, a);

  auto both = g.Neighbors(b, "knows", Direction::kBoth);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 1u);

  std::string label;
  VertexId src, dst;
  PropertyMap props;
  ASSERT_TRUE(g.GetEdge(*e, &label, &src, &dst, &props).ok());
  EXPECT_EQ(label, "knows");
  EXPECT_EQ(src, a);
  EXPECT_EQ(dst, b);
  EXPECT_EQ(props.Get("since").as_int(), 2017);
}

TEST(NativeGraphTest, NeighborsFilterByLabel) {
  NativeGraph g(NoCheckpoint());
  VertexId a = *g.AddVertex("Person", {});
  VertexId b = *g.AddVertex("Person", {});
  VertexId post = *g.AddVertex("Post", {});
  ASSERT_TRUE(g.AddEdge("knows", a, b, {}).ok());
  ASSERT_TRUE(g.AddEdge("likes", a, post, {}).ok());
  EXPECT_EQ(g.Neighbors(a, "knows", Direction::kOut)->size(), 1u);
  EXPECT_EQ(g.Neighbors(a, "likes", Direction::kOut)->size(), 1u);
  EXPECT_EQ(g.Neighbors(a, "", Direction::kOut)->size(), 2u);
  EXPECT_EQ(g.Neighbors(a, "unseen", Direction::kOut)->size(), 0u);
}

TEST(NativeGraphTest, AddEdgeValidatesEndpoints) {
  NativeGraph g(NoCheckpoint());
  VertexId a = *g.AddVertex("Person", {});
  EXPECT_TRUE(g.AddEdge("knows", a, 99, {}).status().IsInvalidArgument());
}

TEST(NativeGraphTest, UniqueIndexLookupAndViolation) {
  NativeGraph g(NoCheckpoint());
  ASSERT_TRUE(g.CreateUniqueIndex("Person", "id").ok());
  VertexId a = *g.AddVertex("Person", {{"id", Value(7)}});
  auto found = g.FindVertex("Person", "id", Value(7));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, a);
  EXPECT_TRUE(g.FindVertex("Person", "id", Value(8)).status().IsNotFound());
  // Duplicate id rejected by the index.
  EXPECT_TRUE(
      g.AddVertex("Person", {{"id", Value(7)}}).status().IsAlreadyExists());
}

TEST(NativeGraphTest, IndexBackfillsExistingVertices) {
  NativeGraph g(NoCheckpoint());
  VertexId a = *g.AddVertex("Person", {{"id", Value(5)}});
  ASSERT_TRUE(g.CreateUniqueIndex("Person", "id").ok());
  auto found = g.FindVertex("Person", "id", Value(5));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, a);
}

TEST(NativeGraphTest, FindVertexWithoutIndexFallsBackToScan) {
  NativeGraph g(NoCheckpoint());
  VertexId a = *g.AddVertex("Person", {{"email", Value("x@y")}});
  auto found = g.FindVertex("Person", "email", Value("x@y"));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, a);
}

TEST(NativeGraphTest, VerticesByLabel) {
  NativeGraph g(NoCheckpoint());
  ASSERT_TRUE(g.AddVertex("Person", {}).ok());
  ASSERT_TRUE(g.AddVertex("Post", {}).ok());
  ASSERT_TRUE(g.AddVertex("Person", {}).ok());
  EXPECT_EQ(g.VerticesByLabel("Person").size(), 2u);
  EXPECT_EQ(g.VerticesByLabel("").size(), 3u);
  EXPECT_EQ(g.VertexCount(), 3u);
}

TEST(NativeGraphTest, SetVertexProperty) {
  NativeGraph g(NoCheckpoint());
  VertexId a = *g.AddVertex("Person", {});
  ASSERT_TRUE(g.SetVertexProperty(a, "age", Value(30)).ok());
  auto v = g.VertexProperty(a, "age");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int(), 30);
  EXPECT_TRUE(g.VertexProperty(a, "missing")->is_null());
}

TEST(NativeGraphTest, ShortestPathOnChainAndTriangle) {
  NativeGraph g(NoCheckpoint());
  std::vector<VertexId> v;
  for (int i = 0; i < 6; ++i) v.push_back(*g.AddVertex("Person", {}));
  // Chain 0-1-2-3-4, plus 5 disconnected.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(g.AddEdge("knows", v[size_t(i)], v[size_t(i) + 1], {}).ok());
  }
  EXPECT_EQ(*g.ShortestPathLength(v[0], v[4], "knows"), 4);
  EXPECT_EQ(*g.ShortestPathLength(v[4], v[0], "knows"), 4);  // undirected
  EXPECT_EQ(*g.ShortestPathLength(v[0], v[0], "knows"), 0);
  EXPECT_EQ(*g.ShortestPathLength(v[0], v[5], "knows"), -1);
  // Shortcut edge shortens the path.
  ASSERT_TRUE(g.AddEdge("knows", v[0], v[3], {}).ok());
  EXPECT_EQ(*g.ShortestPathLength(v[0], v[4], "knows"), 2);
}

TEST(NativeGraphTest, CheckpointTriggersAfterIntervalWrites) {
  NativeGraphOptions opts;
  opts.checkpoint_interval_writes = 100;
  opts.checkpoint_micros_per_dirty_write = 1;
  opts.checkpoint_max_pause_micros = 1000;
  NativeGraph g(opts);
  for (int i = 0; i < 250; ++i) ASSERT_TRUE(g.AddVertex("P", {}).ok());
  EXPECT_EQ(g.checkpoints_taken(), 2u);
}

TEST(NativeGraphTest, SnapshotRestoreRoundTrip) {
  NativeGraph g(NoCheckpoint());
  ASSERT_TRUE(g.CreateUniqueIndex("Person", "id").ok());
  VertexId a = *g.AddVertex("Person", {{"id", Value(1)},
                                       {"firstName", Value("Ada")}});
  VertexId b = *g.AddVertex("Person", {{"id", Value(2)}});
  VertexId post = *g.AddVertex("Post", {{"id", Value(10)}});
  ASSERT_TRUE(g.AddEdge("knows", a, b, {{"since", Value(2017)}}).ok());
  ASSERT_TRUE(g.AddEdge("likes", b, post, {}).ok());

  std::string snapshot;
  ASSERT_TRUE(g.SnapshotTo(&snapshot).ok());
  EXPECT_FALSE(snapshot.empty());

  NativeGraph restored(NoCheckpoint());
  ASSERT_TRUE(restored.RestoreFrom(snapshot).ok());
  EXPECT_EQ(restored.VertexCount(), 3u);
  EXPECT_EQ(restored.EdgeCount(), 2u);
  auto name = restored.VertexProperty(a, "firstName");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->as_string(), "Ada");
  auto nb = restored.Neighbors(a, "knows", Direction::kBoth);
  ASSERT_TRUE(nb.ok());
  ASSERT_EQ(nb->size(), 1u);
  EXPECT_EQ((*nb)[0].vertex, b);
  // Restored stores can rebuild indexes and find by property.
  ASSERT_TRUE(restored.CreateUniqueIndex("Person", "id").ok());
  auto found = restored.FindVertex("Person", "id", Value(2));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, b);
}

TEST(NativeGraphTest, RestoreRejectsNonEmptyStoreAndGarbage) {
  NativeGraph g(NoCheckpoint());
  ASSERT_TRUE(g.AddVertex("P", {}).ok());
  EXPECT_TRUE(g.RestoreFrom("").IsInvalidArgument());

  NativeGraph fresh(NoCheckpoint());
  EXPECT_TRUE(fresh.RestoreFrom("garbage-bytes").IsCorruption());
}

TEST(NativeGraphTest, CheckpointSerializesDirtyRecords) {
  NativeGraphOptions opts;
  opts.checkpoint_interval_writes = 50;
  opts.checkpoint_micros_per_dirty_write = 0;
  NativeGraph g(opts);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(g.AddVertex("P", {{"id", Value(i)}}).ok());
  }
  EXPECT_EQ(g.checkpoints_taken(), 2u);
  // The running checkpoint buffer matches a full snapshot prefix: restore
  // from a fresh full snapshot still works after incremental checkpoints.
  std::string snapshot;
  ASSERT_TRUE(g.SnapshotTo(&snapshot).ok());
  NativeGraph restored(NoCheckpoint());
  ASSERT_TRUE(restored.RestoreFrom(snapshot).ok());
  EXPECT_EQ(restored.VertexCount(), 120u);
}

TEST(ValueCodecTest, ValueRoundTrip) {
  for (const Value& v :
       {Value(), Value(true), Value(int64_t{-12345}), Value(int64_t{1} << 60),
        Value(3.14159), Value("hello world"), Value("")}) {
    std::string buf;
    valuecodec::EncodeValue(&buf, v);
    std::string_view view(buf);
    Value decoded;
    ASSERT_TRUE(valuecodec::DecodeValue(&view, &decoded));
    EXPECT_EQ(decoded, v) << v.ToString();
    EXPECT_TRUE(view.empty());
  }
}

TEST(ValueCodecTest, PropertyMapRoundTrip) {
  PropertyMap props{{"id", Value(77)},
                    {"name", Value("Bob")},
                    {"score", Value(0.5)},
                    {"active", Value(true)}};
  std::string buf;
  valuecodec::EncodePropertyMap(&buf, props);
  std::string_view view(buf);
  PropertyMap decoded;
  ASSERT_TRUE(valuecodec::DecodePropertyMap(&view, &decoded));
  EXPECT_EQ(decoded.size(), 4u);
  EXPECT_EQ(decoded.Get("id").as_int(), 77);
  EXPECT_EQ(decoded.Get("name").as_string(), "Bob");
  EXPECT_EQ(decoded.Get("active").as_bool(), true);
}

TEST(ValueCodecTest, DecodeRejectsTruncation) {
  std::string buf;
  valuecodec::EncodeValue(&buf, Value("long string payload"));
  std::string_view truncated(buf.data(), buf.size() - 5);
  Value v;
  EXPECT_FALSE(valuecodec::DecodeValue(&truncated, &v));
}

}  // namespace
}  // namespace graphbench
