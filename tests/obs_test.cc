#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/json.h"

namespace graphbench {
namespace {

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter* c = registry.GetCounter("test.hits");
      for (int i = 0; i < kIncrements; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("test.hits")->value(),
            uint64_t(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(MetricsRegistryTest, SnapshotAndReset) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::MetricsRegistry registry;
  registry.GetCounter("c")->Increment(5);
  registry.GetGauge("g")->Set(-3);
  registry.GetHistogram("h")->Add(100);

  obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c");
  EXPECT_EQ(snap.counters[0].second, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -3);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);

  obs::Counter* c = registry.GetCounter("c");
  registry.Reset();
  EXPECT_EQ(c, registry.GetCounter("c"));  // pointers survive Reset
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(registry.GetGauge("g")->value(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->count(), 0u);
}

TEST(HistogramStatsTest, PercentileEdges) {
  Histogram empty;
  obs::MetricsSnapshot::HistogramStats zero =
      obs::SummarizeHistogram(empty);
  EXPECT_EQ(zero.count, 0u);
  EXPECT_EQ(zero.min, 0u);
  EXPECT_EQ(zero.max, 0u);
  EXPECT_EQ(zero.p50, 0);
  EXPECT_EQ(zero.p99, 0);

  Histogram one;
  one.Add(250);
  obs::MetricsSnapshot::HistogramStats single = obs::SummarizeHistogram(one);
  EXPECT_EQ(single.count, 1u);
  EXPECT_EQ(single.min, 250u);
  EXPECT_EQ(single.max, 250u);
  // All percentiles collapse to (the bucket of) the only sample.
  EXPECT_GE(single.p99, single.p50);
  EXPECT_GE(single.p50, 250.0 / 2);

  Histogram many;
  for (uint64_t i = 1; i <= 1000; ++i) many.Add(i);
  obs::MetricsSnapshot::HistogramStats stats = obs::SummarizeHistogram(many);
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 1000u);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
  EXPECT_LE(stats.p99, double(stats.max) * 2);
}

TEST(ScopedTimerTest, RecordsIntoHistogramAndCounter) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  Histogram h;
  obs::Counter c;
  { obs::ScopedTimer timer(&h, &c); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(c.value(), 1u);
  { obs::ScopedTimer noop(nullptr); }  // must not crash
}

TEST(TraceRingTest, WraparoundKeepsNewestOldestFirst) {
  obs::TraceRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    ring.Record(obs::Span{i, obs::Stage::kExecute, i * 100, 10});
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  std::vector<obs::Span> spans = ring.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest retained is trace 7, newest is 10, in order.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace_id, 7 + i);
  }
  auto totals = ring.totals(obs::Stage::kExecute);
  EXPECT_EQ(totals.count, 10u);  // totals cover overwritten spans too
  EXPECT_EQ(totals.total_micros, 100u);

  ring.Clear();
  EXPECT_TRUE(ring.Spans().empty());
  EXPECT_EQ(ring.total_recorded(), 0u);
}

TEST(TraceRingTest, ScopedSpanRecordsStage) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::TraceRing ring(16);
  uint64_t id = ring.NextTraceId();
  { obs::ScopedSpan span(&ring, obs::Stage::kSerialize, id); }
  { obs::ScopedSpan span(&ring, obs::Stage::kExecute, id); }
  { obs::ScopedSpan noop(nullptr, obs::Stage::kParse); }  // no-op
  std::vector<obs::Span> spans = ring.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stage, obs::Stage::kSerialize);
  EXPECT_EQ(spans[1].stage, obs::Stage::kExecute);
  EXPECT_EQ(spans[0].trace_id, id);
  EXPECT_EQ(ring.totals(obs::Stage::kSerialize).count, 1u);
  EXPECT_EQ(ring.totals(obs::Stage::kParse).count, 0u);
}

TEST(BenchReportTest, WrittenFileParsesBackWithAllKeys) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::MetricsRegistry registry;
  registry.GetCounter("mq.produced")->Increment(42);
  registry.GetGauge("mq.consumer.lag")->Set(7);
  registry.GetHistogram("sut.neo4j.read_micros")->Add(123);

  obs::BenchReport report("obs_test", "unit");
  report.SetParam("reps", Json::Int(3));
  Json system = Json::Object();
  system.Set("reads_per_second", Json::Number(123.5));
  report.AddSystem("Neo4j (Cypher)", std::move(system));
  report.AttachRegistry(registry);

  obs::TraceRing ring(8);
  ring.Record(obs::Span{1, obs::Stage::kExecute, 0, 50});
  report.AttachTrace(ring);

  Result<std::string> path = report.WriteFile(::testing::TempDir());
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_NE(path->find("BENCH_obs_test.json"), std::string::npos);

  std::FILE* f = std::fopen(path->c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path->c_str());

  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = *parsed;
  for (const char* key :
       {"schema_version", "bench", "scale", "params", "systems", "metrics"}) {
    EXPECT_TRUE(doc.Has(key)) << "missing key " << key;
  }
  EXPECT_EQ(doc.Get("schema_version").as_int(),
            obs::BenchReport::kSchemaVersion);
  EXPECT_EQ(doc.Get("bench").as_string(), "obs_test");
  EXPECT_EQ(doc.Get("params").Get("reps").as_int(), 3);

  ASSERT_EQ(doc.Get("systems").size(), 1u);
  const Json& sys = doc.Get("systems").at(0);
  EXPECT_EQ(sys.Get("system").as_string(), "Neo4j (Cypher)");
  EXPECT_TRUE(sys.Has("trace_stages"));
  EXPECT_EQ(sys.Get("trace_stages").Get("execute").Get("count").as_int(), 1);

  const Json& metrics = doc.Get("metrics");
  EXPECT_EQ(metrics.Get("counters").Get("mq.produced").as_int(), 42);
  EXPECT_EQ(metrics.Get("gauges").Get("mq.consumer.lag").as_int(), 7);
  const Json& hist =
      metrics.Get("histograms").Get("sut.neo4j.read_micros");
  for (const char* key :
       {"count", "mean_us", "min_us", "max_us", "p50_us", "p95_us",
        "p99_us"}) {
    EXPECT_TRUE(hist.Has(key)) << "missing histogram key " << key;
  }
  EXPECT_EQ(hist.Get("count").as_int(), 1);
}

}  // namespace
}  // namespace graphbench
