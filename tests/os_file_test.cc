#include "storage/os_file.h"

#include <gtest/gtest.h>

#include <string>

#include "util/random.h"

namespace graphbench {
namespace storage {
namespace {

TEST(Crc32Test, KnownVectorsAndSeedChaining) {
  // CRC-32C of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32(""), 0u);
  // Different seeds must produce different checksums (the salt property
  // the WAL's generation rejection relies on).
  EXPECT_NE(Crc32("payload", 1), Crc32("payload", 2));
}

TEST(MemFileSystemTest, ReadWriteAppendTruncate) {
  MemFileSystem fs;
  auto file = fs.Open("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  std::string out;
  ASSERT_TRUE((*file)->ReadAt(0, 64, &out).ok());
  EXPECT_EQ(out, "hello world");
  ASSERT_TRUE((*file)->WriteAt(6, "WORLD").ok());
  ASSERT_TRUE((*file)->ReadAt(6, 5, &out).ok());
  EXPECT_EQ(out, "WORLD");
  ASSERT_TRUE((*file)->Truncate(5).ok());
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
  // Reading past EOF is a short read, not an error.
  ASSERT_TRUE((*file)->ReadAt(100, 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(MemFileSystemTest, SparseHolesReadAsZeros) {
  MemFileSystem fs;
  auto file = fs.Open("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->WriteAt(10, "x").ok());
  std::string out;
  ASSERT_TRUE((*file)->ReadAt(0, 11, &out).ok());
  ASSERT_EQ(out.size(), 11u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], '\0');
  EXPECT_EQ(out[10], 'x');
}

TEST(MemFileSystemTest, ContentsOutliveHandlesAndCrashKeepsSynced) {
  MemFileSystem fs;
  {
    auto file = fs.Open("f");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("durable").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Append("-pending").ok());
  }
  EXPECT_EQ(fs.PendingBytes(), 8u);
  Rng rng(1);
  fs.Crash(&rng);
  EXPECT_EQ(fs.PendingBytes(), 0u);
  auto file = fs.Open("f");
  ASSERT_TRUE(file.ok());
  std::string out;
  ASSERT_TRUE((*file)->ReadAt(0, 64, &out).ok());
  // The synced prefix always survives; the pending suffix may or may not.
  ASSERT_GE(out.size(), 7u);
  EXPECT_EQ(out.substr(0, 7), "durable");
}

TEST(MemFileSystemTest, CrashTearsAtSectorBoundaries) {
  // A large unsynced write must survive only as a 512-aligned prefix (or
  // fully, or not at all) — never at byte granularity.
  for (uint64_t seed = 0; seed < 32; ++seed) {
    MemFileSystem fs;
    auto file = fs.Open("f");
    ASSERT_TRUE(file.ok());
    std::string data(4096, 'd');
    ASSERT_TRUE((*file)->Append(data).ok());
    Rng rng(seed);
    fs.Crash(&rng);
    auto size = (*file)->Size();
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size % kSectorBytes, 0u) << "seed " << seed;
    EXPECT_LE(*size, data.size());
  }
}

TEST(MemFileSystemTest, RemoveAndExists) {
  MemFileSystem fs;
  EXPECT_FALSE(fs.Exists("f"));
  ASSERT_TRUE(fs.Open("f").ok());
  EXPECT_TRUE(fs.Exists("f"));
  ASSERT_TRUE(fs.Remove("f").ok());
  EXPECT_FALSE(fs.Exists("f"));
  // Directories don't exist in the in-memory namespace; CreateDir accepts
  // anything so callers can be path-layout agnostic.
  EXPECT_TRUE(fs.CreateDir("any/dir").ok());
}

TEST(FaultFileTest, FailsAfterScheduledFsyncCount) {
  MemFileSystem fs;
  auto base = fs.Open("f");
  ASSERT_TRUE(base.ok());
  FaultOptions opts;
  opts.fail_after_fsyncs = 2;
  FaultFile file(std::move(*base), opts);
  ASSERT_TRUE(file.Append("a").ok());
  EXPECT_TRUE(file.Sync().ok());   // 1st: ok
  EXPECT_FALSE(file.Sync().ok());  // 2nd: scheduled failure
  EXPECT_FALSE(file.Sync().ok());  // and every one after
  EXPECT_EQ(file.syncs_attempted(), 3u);
  // The failed fsync left the write pending — at the crash's mercy.
  EXPECT_EQ(fs.PendingBytes(), 0u);  // first sync covered it
}

TEST(FaultFileTest, ShortWritePersistsAlignedPrefixAndErrors) {
  MemFileSystem fs;
  auto base = fs.Open("f");
  ASSERT_TRUE(base.ok());
  FaultOptions opts;
  opts.short_write_at = 2;
  FaultFile file(std::move(*base), opts);
  ASSERT_TRUE(file.Append(std::string(512, 'a')).ok());
  EXPECT_FALSE(file.Append(std::string(1024, 'b')).ok());  // torn short
  auto size = file.Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size % kSectorBytes, 0u);
  EXPECT_LT(*size, 512u + 1024u);
}

TEST(FaultFileTest, DiskFullAfterByteBudget) {
  MemFileSystem fs;
  auto base = fs.Open("f");
  ASSERT_TRUE(base.ok());
  FaultOptions opts;
  opts.fail_after_write_bytes = 100;
  FaultFile file(std::move(*base), opts);
  ASSERT_TRUE(file.Append(std::string(100, 'a')).ok());
  EXPECT_FALSE(file.Append("b").ok());
}

TEST(FaultFileSystemTest, PathFilterScopesTheFaultSchedule) {
  MemFileSystem base;
  FaultOptions opts;
  opts.fail_after_fsyncs = 1;
  FaultFileSystem fs(&base, opts, ".wal");
  auto wal = fs.Open("store.wal");
  auto db = fs.Open("store.db");
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*wal)->Sync().ok());  // matches filter: faulted
  EXPECT_TRUE((*db)->Sync().ok());    // passes through unwrapped
}

}  // namespace
}  // namespace storage
}  // namespace graphbench
