#include "storage/paged_table.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "storage/os_file.h"
#include "storage/pager.h"

namespace graphbench {
namespace {

using storage::MemFileSystem;
using storage::Pager;
using storage::PagerOptions;

TableSchema IdValueSchema() {
  return TableSchema(
      "t", {{"id", Value::Type::kInt}, {"v", Value::Type::kString}});
}

Row MakeRow(RowId id) {
  return Row{Value(int64_t(id)), Value("v" + std::to_string(id))};
}

std::unique_ptr<Pager> MustOpen(storage::FileSystem* fs) {
  PagerOptions options;
  options.cache_pages = 64;
  auto pager = Pager::Open(fs, "t.db", "t.wal", options);
  EXPECT_TRUE(pager.ok()) << pager.status().ToString();
  return std::move(pager).value();
}

// Attach must rebuild slot_pages_ in allocation order. The directory
// chain is stored newest-page-first, so this only bites once the table
// spans more than one directory page (> kDirCapacity slot pages, ~15.7k
// rows): a naive chain-order walk permutes the RowId -> page mapping and
// every row in the older runs resolves to the wrong page.
TEST(PagedTableTest, AttachAfterMultipleDirectoryPages) {
  // 508 ids per directory page; two pages of slots past the first
  // directory page so both runs are non-trivial.
  constexpr RowId kRows = RowId((508 + 2) * PagedTable::kSlotsPerPage);
  MemFileSystem fs;
  uint64_t meta_page = 0;
  {
    auto pager = MustOpen(&fs);
    auto table = PagedTable::Create(pager.get(), IdValueSchema());
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    meta_page = (*table)->meta_page();
    for (RowId id = 0; id < kRows; ++id) {
      auto inserted = (*table)->Insert(MakeRow(id));
      ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
      ASSERT_EQ(*inserted, id);
    }
    // Deletes sprinkled across both directory runs must survive too.
    ASSERT_TRUE((*table)->Delete(3).ok());
    ASSERT_TRUE((*table)->Delete(kRows - 3).ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }

  auto pager = MustOpen(&fs);
  auto table = PagedTable::Attach(pager.get(), meta_page, IdValueSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->row_count(), kRows - 2);
  for (RowId id : {RowId(0), RowId(1000),
                   RowId(508 * PagedTable::kSlotsPerPage - 1),
                   RowId(508 * PagedTable::kSlotsPerPage), kRows - 1}) {
    Row row;
    ASSERT_TRUE((*table)->Get(id, &row).ok()) << "row " << id;
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0].as_int(), int64_t(id));
    EXPECT_EQ(row[1].as_string(), "v" + std::to_string(id));
  }
  Row row;
  EXPECT_TRUE((*table)->Get(3, &row).IsNotFound());
  EXPECT_TRUE((*table)->Get(kRows - 3, &row).IsNotFound());

  // And the reattached table keeps accepting writes at the right ids.
  auto inserted = (*table)->Insert(MakeRow(kRows));
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, kRows);
}

}  // namespace
}  // namespace graphbench
