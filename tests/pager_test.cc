#include "storage/pager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "storage/os_file.h"
#include "util/random.h"

namespace graphbench {
namespace storage {
namespace {

std::unique_ptr<Pager> MustOpen(FileSystem* fs,
                                const PagerOptions& options = {}) {
  auto pager = Pager::Open(fs, "t.db", "t.wal", options);
  EXPECT_TRUE(pager.ok()) << pager.status().ToString();
  return std::move(pager).value();
}

std::string ReadPage(Pager* pager, uint64_t page_id, size_t n) {
  auto page = pager->Fetch(page_id);
  EXPECT_TRUE(page.ok()) << page.status().ToString();
  return std::string(page->data(), n);
}

TEST(PagerTest, AllocateWriteReadBack) {
  MemFileSystem fs;
  auto pager = MustOpen(&fs);
  pager->BeginOp();
  auto page = pager->Allocate();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->page_id(), 1u);
  page->MarkDirty();
  std::memcpy(page->data(), "hello", 5);
  ASSERT_TRUE(pager->CommitOp().ok());
  EXPECT_EQ(ReadPage(pager.get(), 1, 5), "hello");
  EXPECT_EQ(pager->page_count(), 2u);
}

TEST(PagerTest, AbortRestoresPreImages) {
  MemFileSystem fs;
  auto pager = MustOpen(&fs);
  pager->BeginOp();
  auto page = pager->Allocate();
  ASSERT_TRUE(page.ok());
  page->MarkDirty();
  std::memcpy(page->data(), "committed", 9);
  ASSERT_TRUE(pager->CommitOp().ok());

  pager->BeginOp();
  auto again = pager->Fetch(1);
  ASSERT_TRUE(again.ok());
  again->MarkDirty();
  std::memcpy(again->data(), "scribbled", 9);
  again = PageRef();  // unpin before abort
  pager->AbortOp();
  EXPECT_EQ(ReadPage(pager.get(), 1, 9), "committed");
}

TEST(PagerTest, EvictionFlushesUnderWalRuleAndReloadsValidated) {
  MemFileSystem fs;
  PagerOptions options;
  options.cache_pages = 4;  // tiny pool: every op evicts
  auto pager = MustOpen(&fs, options);
  for (int i = 0; i < 32; ++i) {
    pager->BeginOp();
    auto page = pager->Allocate();
    ASSERT_TRUE(page.ok());
    page->MarkDirty();
    std::string text = "page-" + std::to_string(i);
    std::memcpy(page->data(), text.data(), text.size());
    ASSERT_TRUE(pager->CommitOp().ok());
  }
  // Everything reloads from disk through the checksum check.
  for (int i = 0; i < 32; ++i) {
    std::string expect = "page-" + std::to_string(i);
    EXPECT_EQ(ReadPage(pager.get(), uint64_t(i + 1), expect.size()), expect);
  }
}

TEST(PagerTest, CheckpointThenReopenWithoutWal) {
  MemFileSystem fs;
  {
    auto pager = MustOpen(&fs);
    pager->BeginOp();
    auto page = pager->Allocate();
    ASSERT_TRUE(page.ok());
    page->MarkDirty();
    std::memcpy(page->data(), "persisted", 9);
    ASSERT_TRUE(pager->CommitOp().ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
    EXPECT_EQ(pager->checkpoints_taken(), 1u);
  }
  auto pager = MustOpen(&fs);
  EXPECT_EQ(pager->recovered_records(), 0u);  // WAL was reset
  EXPECT_EQ(ReadPage(pager.get(), 1, 9), "persisted");
}

TEST(PagerTest, ReopenReplaysWalAfterCrash) {
  MemFileSystem fs;
  Rng rng(3);
  {
    auto pager = MustOpen(&fs);
    pager->BeginOp();
    auto page = pager->Allocate();
    ASSERT_TRUE(page.ok());
    page->MarkDirty();
    std::memcpy(page->data(), "logged-not-flushed", 18);
    ASSERT_TRUE(pager->CommitOp().ok());
    ASSERT_TRUE(pager->wal()->Sync().ok());
    // No checkpoint: the db file never saw the page. Crash.
  }
  fs.Crash(&rng);
  auto pager = MustOpen(&fs);
  EXPECT_GT(pager->recovered_records(), 0u);
  EXPECT_EQ(ReadPage(pager.get(), 1, 18), "logged-not-flushed");
}

TEST(PagerTest, RedoIsIdempotentAcrossDoubleRecovery) {
  MemFileSystem fs;
  {
    auto pager = MustOpen(&fs);
    for (int i = 0; i < 3; ++i) {
      pager->BeginOp();
      auto page = i == 0 ? pager->Allocate() : pager->Fetch(1);
      ASSERT_TRUE(page.ok());
      page->MarkDirty();
      std::string text = "round-" + std::to_string(i);
      std::memcpy(page->data(), text.data(), text.size());
      ASSERT_TRUE(pager->CommitOp().ok());
    }
    ASSERT_TRUE(pager->wal()->Sync().ok());
  }
  // Recover twice from the same durable state: same result both times.
  for (int pass = 0; pass < 2; ++pass) {
    auto pager = MustOpen(&fs);
    EXPECT_EQ(ReadPage(pager.get(), 1, 7), "round-2") << "pass " << pass;
  }
}

TEST(PagerTest, CommitUnknownOnWalFsyncFailure) {
  MemFileSystem base;
  FaultOptions fault;
  fault.fail_after_fsyncs = 2;  // header-create sync passes, commit fails
  FaultFileSystem fs(&base, fault, ".wal");
  PagerOptions options;
  options.fsync_on_commit = true;
  auto opened = Pager::Open(&fs, "t.db", "t.wal", options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& pager = *opened;
  pager->BeginOp();
  auto page = pager->Allocate();
  ASSERT_TRUE(page.ok());
  page->MarkDirty();
  std::memcpy(page->data(), "x", 1);
  page = PageRef();
  Status commit = pager->CommitOp();
  EXPECT_FALSE(commit.ok());  // commit-unknown surfaces as failure
  // The in-memory state still reflects the write (WAL-covered).
  EXPECT_EQ(ReadPage(pager.get(), 1, 1), "x");
}

// A checkpoint that fails at or after the header write leaves the
// published generation ambiguous: if the unsynced new-generation header
// lands in the crash, recovery rejects the still-active old-salt WAL. A
// commit appended (and acked) after that point would be silently
// dropped, so the pager must refuse commits from the failure onward.
TEST(PagerTest, CheckpointFailureAfterHeaderPublishDegradesPager) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    MemFileSystem base;
    FaultOptions fault;
    // db-file syncs: #1 create-header, #2 the checkpoint's pre-header
    // flush barrier, #3 the post-header-publish sync. Fail from #3 on.
    fault.fail_after_fsyncs = 3;
    FaultFileSystem fs(&base, fault, ".db");
    PagerOptions options;
    options.fsync_on_commit = true;
    auto opened = Pager::Open(&fs, "t.db", "t.wal", options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& pager = *opened;
    pager->BeginOp();
    auto page = pager->Allocate();
    ASSERT_TRUE(page.ok());
    page->MarkDirty();
    std::memcpy(page->data(), "acked", 5);
    page = PageRef();
    ASSERT_TRUE(pager->CommitOp().ok());

    EXPECT_FALSE(pager->Checkpoint().ok());

    // Degraded: later commits are refused (and rolled back in memory),
    // as are further checkpoints.
    pager->BeginOp();
    page = pager->Fetch(1);
    ASSERT_TRUE(page.ok());
    page->MarkDirty();
    std::memcpy(page->data(), "late!", 5);
    page = PageRef();
    EXPECT_FALSE(pager->CommitOp().ok());
    EXPECT_EQ(ReadPage(pager.get(), 1, 5), "acked");
    EXPECT_FALSE(pager->Checkpoint().ok());
    pager.reset();

    // Whichever way the crash resolves the ambiguous header write, the
    // acked pre-checkpoint commit must survive recovery.
    base.Crash(&rng);
    auto reopened = Pager::Open(&base, "t.db", "t.wal", options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(ReadPage(reopened->get(), 1, 5), "acked")
        << "trial " << trial;
  }
}

// An op that rewrites identical bytes logs no record, but under
// fsync-per-commit it must not ack while the record that actually put
// those bytes there is still unsynced (commit-unknown): an OK would
// promise durability a crash can break.
TEST(PagerTest, NoChangeCommitStillHonorsFsyncContract) {
  MemFileSystem base;
  FaultOptions fault;
  fault.fail_after_fsyncs = 2;  // wal create's sync passes; later fail
  FaultFileSystem fs(&base, fault, ".wal");
  PagerOptions options;
  options.fsync_on_commit = true;
  auto opened = Pager::Open(&fs, "t.db", "t.wal", options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& pager = *opened;

  // Appended but the fsync fails: commit-unknown, state stands.
  pager->BeginOp();
  auto page = pager->Allocate();
  ASSERT_TRUE(page.ok());
  page->MarkDirty();
  std::memcpy(page->data(), "maybe", 5);
  page = PageRef();
  EXPECT_FALSE(pager->CommitOp().ok());

  // Identical rewrite: nothing to log, but the covering record is still
  // unsynced — the commit must retry the fsync and report its failure.
  pager->BeginOp();
  page = pager->Fetch(1);
  ASSERT_TRUE(page.ok());
  page->MarkDirty();
  std::memcpy(page->data(), "maybe", 5);
  page = PageRef();
  EXPECT_FALSE(pager->CommitOp().ok());
}

TEST(PagerTest, TornPageRepairedByFullPageImage) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    MemFileSystem trial_fs;
    {
      auto pager = MustOpen(&trial_fs);
      // Two commits to the same page: image + delta in the WAL.
      pager->BeginOp();
      auto page = pager->Allocate();
      ASSERT_TRUE(page.ok());
      page->MarkDirty();
      std::string fill(kPageDataSize, 'A');
      std::memcpy(page->data(), fill.data(), fill.size());
      page = PageRef();
      ASSERT_TRUE(pager->CommitOp().ok());
      pager->BeginOp();
      page = pager->Fetch(1);
      ASSERT_TRUE(page.ok());
      page->MarkDirty();
      std::memcpy(page->data(), "BB", 2);
      page = PageRef();
      ASSERT_TRUE(pager->CommitOp().ok());
      ASSERT_TRUE(pager->wal()->Sync().ok());
      // Flush the page so the db file write itself can tear in the crash.
      ASSERT_TRUE(pager->Checkpoint().ok());
      pager->BeginOp();
      page = pager->Fetch(1);
      ASSERT_TRUE(page.ok());
      page->MarkDirty();
      std::memcpy(page->data(), "CC", 2);
      page = PageRef();
      ASSERT_TRUE(pager->CommitOp().ok());
      ASSERT_TRUE(pager->wal()->Sync().ok());
    }
    trial_fs.Crash(&rng);
    auto pager = MustOpen(&trial_fs);
    std::string head = ReadPage(pager.get(), 1, 2);
    std::string tail = ReadPage(pager.get(), 1, kPageDataSize);
    EXPECT_EQ(head, "CC") << "trial " << trial;
    EXPECT_EQ(tail.substr(2), std::string(kPageDataSize - 2, 'A'));
  }
}

TEST(OverflowChainTest, RoundTripsAcrossPages) {
  MemFileSystem fs;
  auto pager = MustOpen(&fs);
  std::string big(kPageDataSize * 2 + 100, 'q');
  for (size_t i = 0; i < big.size(); ++i) big[i] = char('0' + i % 10);
  pager->BeginOp();
  auto first = WriteOverflowChain(pager.get(), big);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(pager->CommitOp().ok());
  auto read = ReadOverflowChain(pager.get(), *first, big.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, big);
}

}  // namespace
}  // namespace storage
}  // namespace graphbench
