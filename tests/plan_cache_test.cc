// Tests for the text-keyed LRU plan cache and the Prepare/Bind/Execute
// lifecycle it backs: eviction order, hit/miss accounting, plan lifetime
// across eviction, and — per engine — equivalence between the prepared
// path and the parse-per-call path, plus concurrent Prepare/Execute from
// reader threads (exercised under the sanitizer CI configuration).

#include "lang/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engines/native/cypher_engine.h"
#include "engines/rdf/rdf_engine.h"
#include "engines/relational/database.h"

namespace graphbench {
namespace {

struct FakePlan {
  int id = 0;
};

std::shared_ptr<const FakePlan> Plan(int id) {
  return std::make_shared<const FakePlan>(FakePlan{id});
}

TEST(PlanCacheTest, LookupCountsMissThenHit) {
  lang::PlanCache<FakePlan> cache("test", 4);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  cache.Insert("q", Plan(7));
  auto hit = cache.Lookup("q");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 7);
  lang::PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedInOrder) {
  lang::PlanCache<FakePlan> cache("test", 2);
  cache.Insert("a", Plan(1));
  cache.Insert("b", Plan(2));
  cache.Insert("c", Plan(3));  // evicts a (oldest)
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  cache.Insert("d", Plan(4));  // evicts b, not c
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_TRUE(cache.Contains("d"));
  EXPECT_EQ(cache.Stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, LookupPromotesAgainstEviction) {
  lang::PlanCache<FakePlan> cache("test", 2);
  cache.Insert("a", Plan(1));
  cache.Insert("b", Plan(2));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // a is now most recent
  cache.Insert("c", Plan(3));             // so b goes, not a
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
}

TEST(PlanCacheTest, ContainsTouchesNeitherLruNorCounters) {
  lang::PlanCache<FakePlan> cache("test", 2);
  cache.Insert("a", Plan(1));
  cache.Insert("b", Plan(2));
  EXPECT_TRUE(cache.Contains("a"));  // must NOT promote a
  cache.Insert("c", Plan(3));
  EXPECT_FALSE(cache.Contains("a"));
  lang::PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.0);
}

TEST(PlanCacheTest, InsertReplacesWithoutEviction) {
  lang::PlanCache<FakePlan> cache("test", 2);
  cache.Insert("q", Plan(1));
  cache.Insert("q", Plan(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
  auto p = cache.Lookup("q");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->id, 2);
}

TEST(PlanCacheTest, EvictedPlanOutlivesEvictionWhileHeld) {
  lang::PlanCache<FakePlan> cache("test", 1);
  cache.Insert("a", Plan(42));
  std::shared_ptr<const FakePlan> held = cache.Lookup("a");
  ASSERT_NE(held, nullptr);
  cache.Insert("b", Plan(43));  // evicts a while we still hold its plan
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_EQ(held->id, 42);
}

TEST(PlanCacheTest, ZeroCapacityClampsToOne) {
  lang::PlanCache<FakePlan> cache("test", 0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Insert("a", Plan(1));
  EXPECT_TRUE(cache.Contains("a"));
}

TEST(PlanCacheTest, ConcurrentLookupInsertChurn) {
  // More live keys than capacity, hammered from several threads: every
  // hit must return the plan inserted for that key even while other
  // threads trigger evictions.
  lang::PlanCache<FakePlan> cache("test", 4);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  constexpr int kKeys = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIters; ++i) {
        int k = (t * 31 + i) % kKeys;
        std::string key = "stmt-" + std::to_string(k);
        auto plan = cache.Lookup(key);
        if (plan == nullptr) {
          cache.Insert(key, Plan(k));
        } else {
          EXPECT_EQ(plan->id, k);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  lang::PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, uint64_t(kThreads) * kIters);
  EXPECT_LE(stats.size, 4u);
}

// ---------------------------------------------------------------------
// Engine-level lifecycle: the prepared path must return exactly what the
// parse-per-call path returns, and the string path must start hitting the
// cache once it is enabled.

std::multiset<int64_t> IntColumn(const QueryResult& r, size_t col) {
  std::multiset<int64_t> out;
  for (const Row& row : r.rows) out.insert(row[col].as_int());
  return out;
}

class SqlPrepareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(StorageMode::kRow);
    ASSERT_TRUE(db_->CreateTable(TableSchema(
                       "person", {{"id", Value::Type::kInt},
                                  {"firstName", Value::Type::kString},
                                  {"lastName", Value::Type::kString}}))
                    .ok());
    ASSERT_TRUE(db_->CreateTable(TableSchema(
                       "knows", {{"person1Id", Value::Type::kInt},
                                 {"person2Id", Value::Type::kInt}}))
                    .ok());
    ASSERT_TRUE(db_->CreateIndex("person", "id", true).ok());
    ASSERT_TRUE(db_->CreateIndex("knows", "person1Id", false).ok());
    const char* names[][2] = {{"Ada", "L"}, {"Bob", "M"}, {"Cy", "N"},
                              {"Dee", "O"}, {"Eve", "P"}};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db_->Execute("INSERT INTO person (id, firstName, lastName)"
                               " VALUES (?, ?, ?)",
                               {Value(i + 1), Value(names[i][0]),
                                Value(names[i][1])})
                      .ok());
    }
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}}) {
      ASSERT_TRUE(db_->Execute("INSERT INTO knows (person1Id, person2Id)"
                               " VALUES (?, ?)",
                               {Value(a), Value(b)})
                      .ok());
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlPrepareTest, PreparedMatchesStringExecution) {
  const char* kLookup =
      "SELECT firstName, lastName FROM person WHERE id = ?";
  const char* kOneHop = "SELECT person2Id FROM knows WHERE person1Id = ?";
  auto lookup = db_->Prepare(kLookup);
  ASSERT_TRUE(lookup.ok()) << lookup.status().ToString();
  auto one_hop = db_->Prepare(kOneHop);
  ASSERT_TRUE(one_hop.ok()) << one_hop.status().ToString();
  for (int id = 1; id <= 5; ++id) {
    auto prepared = db_->Execute(*lookup, {Value(id)});
    auto parsed = db_->Execute(kLookup, {Value(id)});
    ASSERT_TRUE(prepared.ok() && parsed.ok());
    ASSERT_EQ(prepared->rows.size(), parsed->rows.size());
    for (size_t r = 0; r < prepared->rows.size(); ++r) {
      EXPECT_EQ(prepared->rows[r][0].as_string(),
                parsed->rows[r][0].as_string());
    }
    auto hop_prepared = db_->Execute(*one_hop, {Value(id)});
    auto hop_parsed = db_->Execute(kOneHop, {Value(id)});
    ASSERT_TRUE(hop_prepared.ok() && hop_parsed.ok());
    EXPECT_EQ(IntColumn(*hop_prepared, 0), IntColumn(*hop_parsed, 0));
  }
}

TEST_F(SqlPrepareTest, StringExecuteRidesTheCacheOnceEnabled) {
  db_->EnablePlanCache(8);
  const char* kLookup = "SELECT firstName FROM person WHERE id = ?";
  ASSERT_TRUE(db_->Execute(kLookup, {Value(1)}).ok());  // parses + caches
  ASSERT_TRUE(db_->Execute(kLookup, {Value(2)}).ok());  // cache hit
  lang::PlanCacheStats stats = db_->plan_cache_stats();
  EXPECT_GE(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
}

TEST_F(SqlPrepareTest, PrepareErrorsSurfaceNotCrash) {
  auto bad = db_->Prepare("SELECT FROM WHERE");
  EXPECT_FALSE(bad.ok());
  Database::PreparedStatement unprepared;
  EXPECT_FALSE(unprepared.valid());
}

TEST_F(SqlPrepareTest, ConcurrentPrepareExecuteUnderEvictionChurn) {
  // Capacity below the statement-shape count keeps the cache evicting
  // while reader threads execute both prepared and string statements —
  // the exact sharing pattern the driver's reader pool produces.
  db_->EnablePlanCache(2);
  const std::vector<std::string> texts = {
      "SELECT firstName FROM person WHERE id = ?",
      "SELECT lastName FROM person WHERE id = ?",
      "SELECT person2Id FROM knows WHERE person1Id = ?",
      "SELECT id FROM person WHERE id = ?",
  };
  auto shared = db_->Prepare(texts[0]);
  ASSERT_TRUE(shared.ok());
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        int id = (t + i) % 5 + 1;
        auto r1 = db_->Execute(*shared, {Value(id)});
        EXPECT_TRUE(r1.ok());
        const std::string& text = texts[(t + i) % texts.size()];
        auto r2 = db_->Execute(text, {Value(id)});
        EXPECT_TRUE(r2.ok());
        auto p = db_->Prepare(text);
        EXPECT_TRUE(p.ok());
        auto r3 = db_->Execute(*p, {Value(id)});
        EXPECT_TRUE(r3.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  lang::PlanCacheStats stats = db_->plan_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
}

class CypherPrepareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(graph_.CreateUniqueIndex("Person", "id").ok());
    const char* names[] = {"Ada", "Bob", "Cy", "Dee", "Eve"};
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(engine_
                      .Execute("CREATE (p:Person {id: $id, firstName: $fn})",
                               {{"id", Value(i)}, {"fn", Value(names[i - 1])}})
                      .ok());
    }
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}}) {
      ASSERT_TRUE(engine_
                      .Execute("MATCH (a:Person {id: $a}), (b:Person {id: $b})"
                               " CREATE (a)-[:KNOWS]->(b)",
                               {{"a", Value(a)}, {"b", Value(b)}})
                      .ok());
    }
  }

  NativeGraph graph_;
  CypherEngine engine_{&graph_};
};

TEST_F(CypherPrepareTest, PreparedMatchesStringExecution) {
  const char* kOneHop =
      "MATCH (p:Person {id: $id})-[:KNOWS]-(f) RETURN f.id";
  auto prepared = engine_.Prepare(kOneHop);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  for (int id = 1; id <= 5; ++id) {
    CypherEngine::Params params = {{"id", Value(id)}};
    auto bound = engine_.Execute(*prepared, params);
    auto parsed = engine_.Execute(kOneHop, params);
    ASSERT_TRUE(bound.ok() && parsed.ok());
    EXPECT_EQ(IntColumn(*bound, 0), IntColumn(*parsed, 0)) << "id " << id;
  }
}

TEST_F(CypherPrepareTest, StringExecuteRidesTheCacheOnceEnabled) {
  engine_.EnablePlanCache(8);
  const char* kLookup = "MATCH (p:Person {id: $id}) RETURN p.firstName";
  ASSERT_TRUE(engine_.Execute(kLookup, {{"id", Value(1)}}).ok());
  ASSERT_TRUE(engine_.Execute(kLookup, {{"id", Value(2)}}).ok());
  lang::PlanCacheStats stats = engine_.plan_cache_stats();
  EXPECT_GE(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
}

TEST_F(CypherPrepareTest, ConcurrentPrepareExecuteUnderEvictionChurn) {
  engine_.EnablePlanCache(2);
  const std::vector<std::string> texts = {
      "MATCH (p:Person {id: $id}) RETURN p.firstName",
      "MATCH (p:Person {id: $id}) RETURN p.id",
      "MATCH (p:Person {id: $id})-[:KNOWS]-(f) RETURN f.id",
      "MATCH (p:Person {id: $id})-[:KNOWS]-(f) RETURN f.firstName",
  };
  auto shared = engine_.Prepare(texts[2]);
  ASSERT_TRUE(shared.ok());
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        CypherEngine::Params params = {{"id", Value((t + i) % 5 + 1)}};
        EXPECT_TRUE(engine_.Execute(*shared, params).ok());
        const std::string& text = texts[(t + i) % texts.size()];
        EXPECT_TRUE(engine_.Execute(text, params).ok());
        auto p = engine_.Prepare(text);
        EXPECT_TRUE(p.ok());
        EXPECT_TRUE(engine_.Execute(*p, params).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  lang::PlanCacheStats stats = engine_.plan_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
}

class SparqlPrepareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* names[] = {"Ada", "Bob", "Cy", "Dee", "Eve"};
    for (int i = 1; i <= 5; ++i) {
      std::string iri = "person:" + std::to_string(i);
      ASSERT_TRUE(engine_
                      .AddTriple(Term::Iri(iri), "rdf:type",
                                 Term::Iri("snb:Person"))
                      .ok());
      ASSERT_TRUE(engine_
                      .AddTriple(Term::Iri(iri), "snb:id",
                                 Term::Literal(Value(i)))
                      .ok());
      ASSERT_TRUE(engine_
                      .AddTriple(Term::Iri(iri), "snb:firstName",
                                 Term::Literal(Value(names[i - 1])))
                      .ok());
    }
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}}) {
      ASSERT_TRUE(engine_
                      .AddTriple(Term::Iri("person:" + std::to_string(a)),
                                 "snb:knows",
                                 Term::Iri("person:" + std::to_string(b)))
                      .ok());
    }
  }

  RdfEngine engine_;
};

TEST_F(SparqlPrepareTest, PreparedWithNamedParamsMatchesInlinedConstants) {
  // The prepared form carries a $person_id placeholder where the
  // parse-per-call form inlines the constant, as SPARQL clients do.
  auto prepared = engine_.Prepare(
      "SELECT ?fid WHERE { ?p snb:id $person_id . ?p snb:knows ?f . "
      "?f snb:id ?fid }");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  for (int id = 1; id <= 5; ++id) {
    auto bound = engine_.Execute(*prepared, {{"person_id", Value(id)}});
    auto parsed = engine_.Execute(
        "SELECT ?fid WHERE { ?p snb:id " + std::to_string(id) +
        " . ?p snb:knows ?f . ?f snb:id ?fid }");
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(IntColumn(*bound, 0), IntColumn(*parsed, 0)) << "id " << id;
  }
}

TEST_F(SparqlPrepareTest, StringExecuteRidesTheCacheOnceEnabled) {
  engine_.EnablePlanCache(8);
  const char* kLookup =
      "SELECT ?fn WHERE { ?p snb:id 3 . ?p snb:firstName ?fn }";
  ASSERT_TRUE(engine_.Execute(kLookup).ok());
  ASSERT_TRUE(engine_.Execute(kLookup).ok());
  lang::PlanCacheStats stats = engine_.plan_cache_stats();
  EXPECT_GE(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
}

TEST_F(SparqlPrepareTest, ConcurrentPrepareExecuteUnderEvictionChurn) {
  engine_.EnablePlanCache(2);
  const std::vector<std::string> texts = {
      "SELECT ?fn WHERE { ?p snb:id $person_id . ?p snb:firstName ?fn }",
      "SELECT ?fid WHERE { ?p snb:id $person_id . ?p snb:knows ?f . "
      "?f snb:id ?fid }",
      "SELECT ?p WHERE { ?p snb:id $person_id }",
  };
  auto shared = engine_.Prepare(texts[0]);
  ASSERT_TRUE(shared.ok());
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        RdfEngine::Params params = {{"person_id", Value((t + i) % 5 + 1)}};
        EXPECT_TRUE(engine_.Execute(*shared, params).ok());
        const std::string& text = texts[(t + i) % texts.size()];
        auto p = engine_.Prepare(text);
        EXPECT_TRUE(p.ok());
        EXPECT_TRUE(engine_.Execute(*p, params).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  lang::PlanCacheStats stats = engine_.plan_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace graphbench
