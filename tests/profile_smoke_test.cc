// End-to-end smoke: each of the four query pipelines (Gremlin step
// machine, Cypher, SQL, SPARQL) must produce a non-empty per-operator
// profile for a 2-hop query — the property the --profile bench flag
// depends on.

#include <gtest/gtest.h>

#include <memory>

#include "obs/profiler.h"
#include "snb/datagen.h"
#include "snb/params.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

snb::DatagenOptions TinyOptions() {
  snb::DatagenOptions o;
  o.num_persons = 60;
  o.seed = 7;
  return o;
}

const snb::Dataset& SharedDataset() {
  static const snb::Dataset* data =
      new snb::Dataset(snb::Generate(TinyOptions()));
  return *data;
}

class ProfileSmokeTest : public ::testing::TestWithParam<SutKind> {};

TEST_P(ProfileSmokeTest, TwoHopProducesNonEmptyProfile) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  std::unique_ptr<Sut> sut = MakeSut(GetParam());
  ASSERT_TRUE(sut->Load(SharedDataset()).ok());
  snb::ParamPools params(SharedDataset(), 13);
  int64_t person = params.NextPersonId();

  obs::QueryProfile profile;
  auto result = sut->Profiled(&profile, [&] { return sut->TwoHop(person); });
  ASSERT_TRUE(result.ok()) << sut->name() << ": "
                           << result.status().ToString();
  EXPECT_FALSE(profile.empty())
      << sut->name() << " produced no operator rows";
  EXPECT_GT(profile.ops().size(), 1u)
      << sut->name() << " should break the query into multiple operators";
  uint64_t total_invocations = 0;
  for (const auto& op : profile.ops()) total_invocations += op.invocations;
  EXPECT_GT(total_invocations, 0u);
  // Self times must reconstruct a plausible nonzero total. (Micros can
  // legitimately round to zero per-op on a 60-person graph, so only the
  // shape is asserted; TotalSelfMicros is checked over many reps below.)
  for (const auto& op : profile.ops()) {
    EXPECT_LE(op.self_micros, op.cumulative_micros) << op.name;
  }
}

TEST_P(ProfileSmokeTest, RepeatedQueriesAccumulateTime) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  std::unique_ptr<Sut> sut = MakeSut(GetParam());
  ASSERT_TRUE(sut->Load(SharedDataset()).ok());
  snb::ParamPools params(SharedDataset(), 29);

  obs::QueryProfile profile;
  {
    obs::ProfileScope scope(&profile);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(sut->TwoHop(params.NextPersonId()).ok());
    }
  }
  EXPECT_GT(profile.TotalSelfMicros(), 0u) << sut->name();
}

INSTANTIATE_TEST_SUITE_P(FourPipelines, ProfileSmokeTest,
                         ::testing::Values(SutKind::kNeo4jCypher,
                                           SutKind::kNeo4jGremlin,
                                           SutKind::kPostgresSql,
                                           SutKind::kVirtuosoSparql),
                         [](const auto& info) {
                           switch (info.param) {
                             case SutKind::kNeo4jCypher:
                               return "cypher";
                             case SutKind::kNeo4jGremlin:
                               return "gremlin";
                             case SutKind::kPostgresSql:
                               return "sql";
                             default:
                               return "sparql";
                           }
                         });

}  // namespace
}  // namespace graphbench
