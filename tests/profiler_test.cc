// Unit tests for the query profiler: nesting (self vs cumulative
// accounting), merge-by-name, Stop() idempotence, ProfileScope
// install/restore, and thread-local isolation.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace graphbench {
namespace obs {
namespace {

void SpinFor(uint64_t micros) {
  // Busy wait so elapsed time is attributed to the enclosing OpTimer even
  // on coarse clocks.
  uint64_t start = NowMicros();
  while (NowMicros() - start < micros) {
  }
}

TEST(ProfilerTest, RecordMergesByName) {
  QueryProfile p;
  p.Record("scan", 1, 10, 100, 100);
  p.Record("join", 1, 5, 50, 50);
  p.Record("scan", 2, 30, 200, 250);
  ASSERT_EQ(p.ops().size(), 2u);
  const OpStats* scan = p.Find("scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->invocations, 3u);
  EXPECT_EQ(scan->rows, 40u);
  EXPECT_EQ(scan->self_micros, 300u);
  EXPECT_EQ(scan->cumulative_micros, 350u);
  EXPECT_EQ(p.TotalSelfMicros(), 350u);
  // First-execution order is preserved.
  EXPECT_EQ(p.ops()[0].name, "scan");
  EXPECT_EQ(p.ops()[1].name, "join");
}

TEST(ProfilerTest, MergeAddsAllRows) {
  QueryProfile a, b;
  a.Record("scan", 1, 1, 10, 10);
  b.Record("scan", 1, 2, 20, 20);
  b.Record("sort", 1, 3, 30, 30);
  a.Merge(b);
  ASSERT_EQ(a.ops().size(), 2u);
  EXPECT_EQ(a.Find("scan")->self_micros, 30u);
  EXPECT_EQ(a.Find("sort")->rows, 3u);
}

TEST(ProfilerTest, OpTimerIsNoOpWithoutActiveProfile) {
  EXPECT_EQ(ActiveProfile(), nullptr);
  OpTimer op("orphan");
  op.AddRows(3);
  op.Stop();  // must not crash or record anywhere
}

TEST(ProfilerTest, NestedTimersPartitionSelfTime) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  QueryProfile p;
  {
    ProfileScope scope(&p);
    OpTimer parent("parent");
    SpinFor(2000);
    {
      OpTimer child("child");
      SpinFor(2000);
      child.AddRows(7);
    }
    SpinFor(1000);
  }
  const OpStats* parent = p.Find("parent");
  const OpStats* child = p.Find("child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->rows, 7u);
  EXPECT_GE(child->cumulative_micros, 2000u);
  // The child's elapsed time is subtracted from the parent's self time, so
  // self + nested cumulative reconstructs the parent's cumulative exactly.
  EXPECT_EQ(parent->self_micros + child->cumulative_micros,
            parent->cumulative_micros);
  EXPECT_GE(parent->self_micros, 3000u);
  EXPECT_LT(parent->self_micros, parent->cumulative_micros);
}

TEST(ProfilerTest, StopIsIdempotent) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  QueryProfile p;
  {
    ProfileScope scope(&p);
    OpTimer op("phase");
    op.AddRows(1);
    op.Stop();
    op.Stop();  // second Stop and the destructor must not double-record
  }
  const OpStats* phase = p.Find("phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->invocations, 1u);
  EXPECT_EQ(phase->rows, 1u);
}

TEST(ProfilerTest, SequentialStopsKeepSiblingsIndependent) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  QueryProfile p;
  {
    ProfileScope scope(&p);
    OpTimer a("parse");
    SpinFor(1000);
    a.Stop();
    OpTimer b("plan");
    SpinFor(1000);
    b.Stop();
  }
  // Siblings: neither subtracts from the other.
  EXPECT_EQ(p.Find("parse")->self_micros,
            p.Find("parse")->cumulative_micros);
  EXPECT_EQ(p.Find("plan")->self_micros, p.Find("plan")->cumulative_micros);
  EXPECT_GE(p.Find("parse")->self_micros, 1000u);
}

TEST(ProfilerTest, ProfileScopeInstallsAndRestores) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  EXPECT_EQ(ActiveProfile(), nullptr);
  QueryProfile outer, inner;
  {
    ProfileScope a(&outer);
    EXPECT_EQ(ActiveProfile(), &outer);
    {
      ProfileScope b(&inner);
      EXPECT_EQ(ActiveProfile(), &inner);
      ProfileScope c(nullptr);  // disables capture without uninstalling
      EXPECT_EQ(ActiveProfile(), nullptr);
    }
    EXPECT_EQ(ActiveProfile(), &outer);
  }
  EXPECT_EQ(ActiveProfile(), nullptr);
}

TEST(ProfilerTest, InnerScopeDoesNotLeakIntoOuterTimer) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  QueryProfile outer, inner;
  {
    ProfileScope a(&outer);
    OpTimer op("outer_op");
    {
      // A nested scope's timers belong to the nested profile and must not
      // be subtracted from outer_op's self time.
      ProfileScope b(&inner);
      OpTimer nested("inner_op");
      SpinFor(1000);
    }
  }
  ASSERT_NE(outer.Find("outer_op"), nullptr);
  ASSERT_NE(inner.Find("inner_op"), nullptr);
  EXPECT_EQ(outer.Find("outer_op")->self_micros,
            outer.Find("outer_op")->cumulative_micros);
}

TEST(ProfilerTest, ThreadLocalIsolation) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  QueryProfile main_profile;
  ProfileScope scope(&main_profile);
  QueryProfile worker_profile;
  std::thread worker([&] {
    // A fresh thread starts with no active profile regardless of the
    // spawning thread's scope.
    EXPECT_EQ(ActiveProfile(), nullptr);
    {
      OpTimer ignored("ignored");
      ignored.AddRows(1);
    }
    ProfileScope worker_scope(&worker_profile);
    OpTimer op("worker_op");
    op.AddRows(2);
  });
  worker.join();
  EXPECT_TRUE(main_profile.empty());
  ASSERT_NE(worker_profile.Find("worker_op"), nullptr);
  EXPECT_EQ(worker_profile.Find("worker_op")->rows, 2u);
  EXPECT_EQ(worker_profile.Find("ignored"), nullptr);
}

TEST(ProfilerTest, ToStringContainsOperatorRows) {
  QueryProfile p;
  p.Record("Expand", 4, 120, 900, 1500);
  std::string rendered = p.ToString("test profile");
  EXPECT_NE(rendered.find("Expand"), std::string::npos);
  EXPECT_NE(rendered.find("120"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace graphbench
