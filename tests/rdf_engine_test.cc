#include "engines/rdf/rdf_engine.h"

#include <gtest/gtest.h>

#include "lang/sparql/parser.h"

namespace graphbench {
namespace {

class RdfEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Tiny SNB-ish graph: persons 1..5, knows chain 1-2-3-4-5 plus 1-3.
    const char* names[] = {"Ada", "Bob", "Cy", "Dee", "Eve"};
    for (int i = 1; i <= 5; ++i) {
      std::string iri = "person:" + std::to_string(i);
      ASSERT_TRUE(engine_
                      .AddTriple(Term::Iri(iri), "rdf:type",
                                 Term::Iri("snb:Person"))
                      .ok());
      ASSERT_TRUE(engine_
                      .AddTriple(Term::Iri(iri), "snb:id",
                                 Term::Literal(Value(i)))
                      .ok());
      ASSERT_TRUE(engine_
                      .AddTriple(Term::Iri(iri), "snb:firstName",
                                 Term::Literal(Value(names[i - 1])))
                      .ok());
    }
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}}) {
      ASSERT_TRUE(engine_
                      .AddTriple(Term::Iri("person:" + std::to_string(a)),
                                 "snb:knows",
                                 Term::Iri("person:" + std::to_string(b)))
                      .ok());
    }
  }

  RdfEngine engine_;
};

TEST_F(RdfEngineTest, PointLookup) {
  auto r = engine_.Execute(
      "SELECT ?fn WHERE { ?p snb:id 3 . ?p snb:firstName ?fn }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "Cy");
}

TEST_F(RdfEngineTest, PredicateObjectListSyntax) {
  auto r = engine_.Execute(
      "SELECT ?fn WHERE { ?p snb:id 2 ; snb:firstName ?fn . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "Bob");
}

TEST_F(RdfEngineTest, OneHopOutgoing) {
  auto r = engine_.Execute(
      "SELECT ?fid WHERE { ?p snb:id 1 . ?p snb:knows ?f . ?f snb:id ?fid } "
      "ORDER BY ?fid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_int(), 2);
  EXPECT_EQ(r->rows[1][0].as_int(), 3);
}

TEST_F(RdfEngineTest, TwoHopDistinctWithFilter) {
  auto r = engine_.Execute(
      "SELECT DISTINCT ?ffid WHERE { ?p snb:id 1 . ?p snb:knows ?f . "
      "?f snb:knows ?ff . FILTER(?ff != ?p) . ?ff snb:id ?ffid } "
      "ORDER BY ?ffid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);  // 3 (via 2), 4 (via 3)
  EXPECT_EQ(r->rows[0][0].as_int(), 3);
  EXPECT_EQ(r->rows[1][0].as_int(), 4);
}

TEST_F(RdfEngineTest, ShortestPathExtension) {
  auto r = engine_.Execute(
      "SELECT (shortestPath(?a, ?b, snb:knows) AS ?d) "
      "WHERE { ?a snb:id 1 . ?b snb:id 5 }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 3);  // 1-3-4-5
  EXPECT_EQ(r->columns[0], "d");
}

TEST_F(RdfEngineTest, ShortestPathUnreachableAndSelf) {
  ASSERT_TRUE(engine_
                  .AddTriple(Term::Iri("person:9"), "snb:id",
                             Term::Literal(Value(9)))
                  .ok());
  auto r = engine_.Execute(
      "SELECT (shortestPath(?a, ?b, snb:knows) AS ?d) "
      "WHERE { ?a snb:id 1 . ?b snb:id 9 }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), -1);

  auto self = engine_.Execute(
      "SELECT (shortestPath(?a, ?b, snb:knows) AS ?d) "
      "WHERE { ?a snb:id 2 . ?b snb:id 2 }");
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->rows[0][0].as_int(), 0);
}

TEST_F(RdfEngineTest, UnknownConstantGivesEmptyResult) {
  auto r = engine_.Execute("SELECT ?x WHERE { ?x snb:id 999 }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  auto r2 = engine_.Execute("SELECT ?x WHERE { ?x snb:nonexistent ?y }");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->rows.empty());
}

TEST_F(RdfEngineTest, TypeScanReturnsAllPersons) {
  auto r = engine_.Execute(
      "SELECT ?id WHERE { ?p rdf:type snb:Person . ?p snb:id ?id } "
      "ORDER BY DESC(?id) LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].as_int(), 5);
  EXPECT_EQ(r->rows[2][0].as_int(), 3);
}

TEST_F(RdfEngineTest, DuplicateTripleInsertIsIdempotent) {
  uint64_t before = engine_.TripleCount();
  ASSERT_TRUE(engine_
                  .AddTriple(Term::Iri("person:1"), "snb:knows",
                             Term::Iri("person:2"))
                  .ok());
  EXPECT_EQ(engine_.TripleCount(), before);
}

TEST_F(RdfEngineTest, CountWithGroupBy) {
  // Friend count per person over the whole graph.
  auto r = engine_.Execute(
      "SELECT ?pid (COUNT(?f) AS ?n) WHERE { "
      "?p snb:knows ?f . ?p snb:id ?pid } "
      "GROUP BY ?pid ORDER BY DESC(?n) ?pid LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  // knows stored one direction here: out-degrees 1:{2,3}=2, 2:{3}=1,
  // 3:{4}=1, 4:{5}=1.
  EXPECT_EQ(r->rows[0][0].as_int(), 1);
  EXPECT_EQ(r->rows[0][1].as_int(), 2);
  EXPECT_EQ(r->rows[1][1].as_int(), 1);
}

TEST_F(RdfEngineTest, GlobalCount) {
  auto r = engine_.Execute(
      "SELECT (COUNT(?p) AS ?n) WHERE { ?p rdf:type snb:Person }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 5);

  auto empty = engine_.Execute(
      "SELECT (COUNT(?p) AS ?n) WHERE { ?p rdf:type snb:Spaceship }");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->rows[0][0].as_int(), 0);
}

TEST_F(RdfEngineTest, ProjectionOutsideGroupByRejected) {
  auto r = engine_.Execute(
      "SELECT ?pid (COUNT(?f) AS ?n) WHERE { "
      "?p snb:knows ?f . ?p snb:id ?pid } GROUP BY ?other");
  EXPECT_FALSE(r.ok());
}

TEST_F(RdfEngineTest, ParserRejectsMalformedQueries) {
  EXPECT_FALSE(engine_.Execute("SELECT WHERE { ?a ?b ?c }").ok());
  EXPECT_FALSE(engine_.Execute("SELECT ?x { ?x snb:id 1 }").ok());
  EXPECT_FALSE(engine_.Execute("SELECT ?x WHERE { ?x snb:id }").ok());
  EXPECT_FALSE(
      engine_.Execute("SELECT ?x WHERE { ?x snb:id 1 } LIMIT ?x").ok());
  EXPECT_FALSE(engine_.Execute(
                       "SELECT ?y WHERE { ?x snb:id 1 }")
                   .ok());  // unknown projection var
}

TEST(TripleStoreTest, MatchUsesAllBoundCombinations) {
  TripleStore store(4);
  ASSERT_TRUE(store.Insert(1, 10, 100).ok());
  ASSERT_TRUE(store.Insert(1, 10, 101).ok());
  ASSERT_TRUE(store.Insert(2, 10, 100).ok());
  ASSERT_TRUE(store.Insert(1, 11, 100).ok());

  std::vector<Triple> out;
  store.Match(1, kWildcard, kWildcard, &out);
  EXPECT_EQ(out.size(), 3u);
  store.Match(kWildcard, 10, kWildcard, &out);
  EXPECT_EQ(out.size(), 3u);
  store.Match(kWildcard, kWildcard, 100, &out);
  EXPECT_EQ(out.size(), 3u);
  store.Match(kWildcard, 10, 100, &out);
  EXPECT_EQ(out.size(), 2u);
  store.Match(1, 10, 100, &out);
  EXPECT_EQ(out.size(), 1u);
  store.Match(kWildcard, kWildcard, kWildcard, &out);
  EXPECT_EQ(out.size(), 4u);
  store.Match(5, kWildcard, kWildcard, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TripleStoreTest, ReducedIndexConfigurationsStayCorrect) {
  for (int n = 1; n <= 4; ++n) {
    TripleStore store(n);
    ASSERT_TRUE(store.Insert(1, 10, 100).ok());
    ASSERT_TRUE(store.Insert(2, 10, 101).ok());
    ASSERT_TRUE(store.Insert(2, 11, 100).ok());
    std::vector<Triple> out;
    store.Match(kWildcard, 10, kWildcard, &out);
    EXPECT_EQ(out.size(), 2u) << "indexes=" << n;
    store.Match(kWildcard, kWildcard, 100, &out);
    EXPECT_EQ(out.size(), 2u) << "indexes=" << n;
  }
}

TEST(TripleStoreTest, SizeScalesWithIndexCount) {
  TripleStore one(1), four(4);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(one.Insert(i, 1, i + 1).ok());
    ASSERT_TRUE(four.Insert(i, 1, i + 1).ok());
  }
  EXPECT_GT(four.ApproximateSizeBytes(), 3 * one.ApproximateSizeBytes());
}

TEST(TermDictionaryTest, InternAndDecode) {
  TermDictionary dict;
  uint64_t a = dict.InternIri("person:1");
  uint64_t b = dict.InternLiteral(Value(42));
  EXPECT_EQ(dict.InternIri("person:1"), a);  // stable
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Decode(a).iri, "person:1");
  EXPECT_EQ(dict.Decode(b).literal.as_int(), 42);
  ASSERT_TRUE(dict.LookupIri("person:1").has_value());
  EXPECT_FALSE(dict.LookupIri("person:2").has_value());
  EXPECT_FALSE(dict.LookupLiteral(Value(43)).has_value());
  EXPECT_EQ(dict.size(), 2u);
}

TEST(TermDictionaryTest, LiteralTypesDoNotCollideWithIris) {
  TermDictionary dict;
  uint64_t iri = dict.InternIri("42");
  uint64_t lit = dict.InternLiteral(Value("42"));
  uint64_t num = dict.InternLiteral(Value(42));
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, num);
}

}  // namespace
}  // namespace graphbench
