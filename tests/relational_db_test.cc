#include "engines/relational/database.h"

#include <gtest/gtest.h>

#include <memory>

namespace graphbench {
namespace {

// Both storage modes must return identical query results.
class DatabaseContractTest : public ::testing::TestWithParam<StorageMode> {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(GetParam());
    ASSERT_TRUE(db_->CreateTable(TableSchema(
                       "person", {{"id", Value::Type::kInt},
                                  {"firstName", Value::Type::kString},
                                  {"lastName", Value::Type::kString}}))
                    .ok());
    ASSERT_TRUE(db_->CreateTable(TableSchema(
                       "knows", {{"person1Id", Value::Type::kInt},
                                 {"person2Id", Value::Type::kInt}}))
                    .ok());
    ASSERT_TRUE(db_->CreateIndex("person", "id", true).ok());
    ASSERT_TRUE(db_->CreateIndex("knows", "person1Id", false).ok());
    ASSERT_TRUE(db_->CreateIndex("knows", "person2Id", false).ok());
    ASSERT_TRUE(db_->RegisterEdgeTable("knows", "person1Id", "person2Id").ok());

    const char* names[][2] = {{"Ada", "L"},  {"Bob", "M"}, {"Cy", "N"},
                              {"Dee", "O"},  {"Eve", "P"}, {"Fay", "Q"}};
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(Exec("INSERT INTO person (id, firstName, lastName) "
                       "VALUES (?, ?, ?)",
                       {Value(i + 1), Value(names[i][0]), Value(names[i][1])})
                      .ok());
    }
    // Chain 1-2-3-4-5 plus 1-3 shortcut; 6 isolated. Both directions are
    // stored once; queries treat knows as bidirectional by querying both
    // columns (as the paper's fixed reference implementation does).
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}}) {
      ASSERT_TRUE(Exec("INSERT INTO knows (person1Id, person2Id) "
                       "VALUES (?, ?)",
                       {Value(a), Value(b)})
                      .ok());
    }
  }

  Result<QueryResult> Exec(std::string_view sql,
                           const std::vector<Value>& params = {}) {
    return db_->Execute(sql, params);
  }

  std::unique_ptr<Database> db_;
};

TEST_P(DatabaseContractTest, PointLookupViaIndex) {
  auto r = Exec("SELECT firstName, lastName FROM person WHERE id = ?",
                {Value(3)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "Cy");
  EXPECT_EQ(r->columns[0], "firstName");
}

TEST_P(DatabaseContractTest, PointLookupMissingGivesEmpty) {
  auto r = Exec("SELECT firstName FROM person WHERE id = 999");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_P(DatabaseContractTest, FullScanWithoutIndex) {
  auto r = Exec("SELECT id FROM person WHERE firstName = 'Eve'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 5);
}

TEST_P(DatabaseContractTest, OneHopJoin) {
  auto r = Exec(
      "SELECT p.id, p.firstName FROM knows k "
      "JOIN person p ON k.person2Id = p.id WHERE k.person1Id = ? "
      "ORDER BY p.id",
      {Value(1)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);  // 1 knows 2 and 3
  EXPECT_EQ(r->rows[0][0].as_int(), 2);
  EXPECT_EQ(r->rows[1][0].as_int(), 3);
}

TEST_P(DatabaseContractTest, TwoHopDistinct) {
  auto r = Exec(
      "SELECT DISTINCT p3.id FROM knows k1 "
      "JOIN knows k2 ON k1.person2Id = k2.person1Id "
      "JOIN person p3 ON k2.person2Id = p3.id "
      "WHERE k1.person1Id = ? AND p3.id <> ? ORDER BY p3.id",
      {Value(1), Value(1)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // out-edges only: 1->2->3, 1->3->4 => {3, 4}
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_int(), 3);
  EXPECT_EQ(r->rows[1][0].as_int(), 4);
}

TEST_P(DatabaseContractTest, CountStar) {
  auto r = Exec("SELECT COUNT(*) FROM person");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), 6);
}

TEST_P(DatabaseContractTest, OrderByDescAndLimit) {
  auto r = Exec("SELECT id FROM person ORDER BY id DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].as_int(), 6);
  EXPECT_EQ(r->rows[2][0].as_int(), 4);
}

TEST_P(DatabaseContractTest, ShortestPathBothModes) {
  auto r = Exec("SELECT SHORTEST_PATH(?, ?) USING knows(person1Id, person2Id)",
                {Value(1), Value(5)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].as_int(), 3);  // 1-3-4-5 via shortcut

  auto self = Exec(
      "SELECT SHORTEST_PATH(?, ?) USING knows(person1Id, person2Id)",
      {Value(2), Value(2)});
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->rows[0][0].as_int(), 0);

  auto unreachable = Exec(
      "SELECT SHORTEST_PATH(?, ?) USING knows(person1Id, person2Id)",
      {Value(1), Value(6)});
  ASSERT_TRUE(unreachable.ok());
  EXPECT_EQ(unreachable->rows[0][0].as_int(), -1);
}

TEST_P(DatabaseContractTest, ShortestPathIsUndirected) {
  auto r = Exec("SELECT SHORTEST_PATH(?, ?) USING knows(person1Id, person2Id)",
                {Value(5), Value(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), 3);
}

TEST_P(DatabaseContractTest, UniqueIndexRejectsDuplicateInsert) {
  auto dup = Exec("INSERT INTO person (id, firstName, lastName) "
                  "VALUES (1, 'X', 'Y')");
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  // Rolled back: still 6 persons and id=1 unchanged.
  auto count = Exec("SELECT COUNT(*) FROM person");
  EXPECT_EQ(count->rows[0][0].as_int(), 6);
  auto row = Exec("SELECT firstName FROM person WHERE id = 1");
  EXPECT_EQ(row->rows[0][0].as_string(), "Ada");
}

TEST_P(DatabaseContractTest, InsertVisibleToSubsequentQueries) {
  ASSERT_TRUE(Exec("INSERT INTO person (id, firstName, lastName) "
                   "VALUES (7, 'Gil', 'R')")
                  .ok());
  ASSERT_TRUE(
      Exec("INSERT INTO knows (person1Id, person2Id) VALUES (6, 7)").ok());
  auto r = Exec("SELECT SHORTEST_PATH(?, ?) USING knows(person1Id, person2Id)",
                {Value(6), Value(7)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), 1);
}

TEST_P(DatabaseContractTest, ErrorsOnUnknownTableOrColumn) {
  EXPECT_TRUE(Exec("SELECT x FROM nope").status().IsInvalidArgument());
  EXPECT_TRUE(
      Exec("SELECT nope FROM person").status().IsInvalidArgument());
  EXPECT_TRUE(Exec("INSERT INTO person (bogus) VALUES (1)")
                  .status()
                  .IsInvalidArgument());
}

TEST_P(DatabaseContractTest, SizeAccountingGrows) {
  uint64_t before = db_->TotalSizeBytes();
  ASSERT_TRUE(Exec("INSERT INTO person (id, firstName, lastName) "
                   "VALUES (100, 'Zed', 'Z')")
                  .ok());
  EXPECT_GT(db_->TotalSizeBytes(), before);
}

INSTANTIATE_TEST_SUITE_P(Modes, DatabaseContractTest,
                         ::testing::Values(StorageMode::kRow,
                                           StorageMode::kColumnar),
                         [](const auto& info) {
                           return info.param == StorageMode::kRow
                                      ? "Row"
                                      : "Columnar";
                         });

}  // namespace
}  // namespace graphbench
