// Unit tests for the slow-query log: threshold filtering, worst-N
// retention with least-bad eviction, and thread safety.

#include "obs/slowlog.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace graphbench {
namespace obs {
namespace {

QueryProfile ProfileWith(const char* op) {
  QueryProfile p;
  p.Record(op, 1, 1, 10, 10);
  return p;
}

TEST(SlowLogTest, ThresholdFiltersFastQueries) {
  SlowQueryLog log(/*capacity=*/4, /*threshold_micros=*/1000);
  log.Record("two_hop", "", "person_id=1", 999, {});
  log.Record("two_hop", "", "person_id=2", 1000, {});
  log.Record("two_hop", "", "person_id=3", 5000, {});
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].latency_micros, 5000u);
  EXPECT_EQ(entries[1].latency_micros, 1000u);
}

TEST(SlowLogTest, KeepsWorstNAndEvictsLeastBad) {
  SlowQueryLog log(/*capacity=*/3, /*threshold_micros=*/2);
  const uint64_t latencies[] = {5, 1, 9, 7, 3};
  for (uint64_t lat : latencies) {
    log.Record("q", "", "p", lat, {});
  }
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // 1 is below the threshold; 3 never makes the cut; 5 is evicted by 7.
  EXPECT_EQ(entries[0].latency_micros, 9u);
  EXPECT_EQ(entries[1].latency_micros, 7u);
  EXPECT_EQ(entries[2].latency_micros, 5u);
}

TEST(SlowLogTest, TiesKeepArrivalOrder) {
  SlowQueryLog log(/*capacity=*/3, /*threshold_micros=*/0);
  log.Record("a", "", "first", 100, {});
  log.Record("b", "", "second", 100, {});
  log.Record("c", "", "third", 100, {});
  log.Record("d", "", "late", 100, {});  // ties with the worst cut: dropped
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].kind, "a");
  EXPECT_EQ(entries[1].kind, "b");
  EXPECT_EQ(entries[2].kind, "c");
}

TEST(SlowLogTest, CarriesProfileAndDigest) {
  SlowQueryLog log(2, 0);
  log.Record("two_hop", "MATCH (p:Person {id: $id}) RETURN p",
             "person_id=42", 777, ProfileWith("Expand"));
  auto entries = log.TakeEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, "two_hop");
  EXPECT_EQ(entries[0].statement, "MATCH (p:Person {id: $id}) RETURN p");
  EXPECT_EQ(entries[0].param_digest, "person_id=42");
  ASSERT_NE(entries[0].profile.Find("Expand"), nullptr);
  // TakeEntries empties the log.
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Entries().empty());
}

TEST(SlowLogTest, ZeroCapacityRecordsNothing) {
  SlowQueryLog log(0, 0);
  log.Record("q", "", "p", 12345, {});
  EXPECT_EQ(log.size(), 0u);
}

TEST(SlowLogTest, ConcurrentRecordsKeepTheGlobalWorst) {
  SlowQueryLog log(/*capacity=*/8, /*threshold_micros=*/0);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Record("q", "", "p", uint64_t(t) * kPerThread + i + 1, {});
      }
    });
  }
  for (auto& t : threads) t.join();
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 8u);
  // The global worst 8 of 1..1000 survive regardless of interleaving.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].latency_micros, 1000u - i);
  }
}

}  // namespace
}  // namespace obs
}  // namespace graphbench
