// Snapshot-isolation property test for the epoch subsystem (DESIGN.md
// §11): a reader that pins one epoch sees ONE committed state of the
// store across multiple queries, no matter what a concurrent writer
// commits in between. The probe is KNOWS symmetry — every friendship is
// written as two directed halves inside one write batch, so under a
// single pinned epoch OneHop(a) containing b and OneHop(b) containing a
// must agree; an unpinned pair of reads can legitimately straddle a
// commit and observe the asymmetry this test forbids. Covers the SUTs
// whose read paths execute on the calling thread (Cypher/native and the
// matrix engine) — the Gremlin configurations hand traversals to server
// worker threads, so a guard held here does not pin their readers and
// cross-query snapshots are out of scope for them by design. Run under
// TSan this also proves the no-reader-locks discipline is race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "concurrency/epoch.h"
#include "snb/datagen.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

constexpr int kWriterCycles = 400;   // add+remove per churn edge per cycle
constexpr int kReaderThreads = 2;
constexpr int kMaxChurnEdges = 8;

std::set<int64_t> FriendIds(const QueryResult& r) {
  std::set<int64_t> out;
  for (const Row& row : r.rows) out.insert(row[0].as_int());
  return out;
}

class SnapshotIsolationTest : public ::testing::TestWithParam<SutKind> {
 protected:
  void SetUp() override {
    snb::DatagenOptions tiny;
    tiny.num_persons = 60;
    tiny.seed = 909;
    data_ = snb::Generate(tiny);
    sut_ = MakeSut(GetParam());
    ASSERT_TRUE(sut_->Load(data_).ok()) << sut_->name();

    // Churn edges: KNOWS inserts from the update stream whose endpoints
    // are snapshot persons, so every Apply below touches loaded vertices.
    std::set<int64_t> loaded;
    for (const snb::Person& p : data_.persons) loaded.insert(p.id);
    for (const snb::UpdateOp& op : data_.update_stream) {
      if (op.kind != snb::UpdateOp::Kind::kAddFriendship) continue;
      if (!loaded.count(op.knows.person1) || !loaded.count(op.knows.person2))
        continue;
      churn_.push_back(op);
      if (churn_.size() >= kMaxChurnEdges) break;
    }
    ASSERT_FALSE(churn_.empty()) << "datagen produced no usable KNOWS adds";
  }

  snb::Dataset data_;
  std::unique_ptr<Sut> sut_;
  std::vector<snb::UpdateOp> churn_;
};

// The single writer flips each churn edge between present and absent as
// fast as it can; readers pin one epoch per probe and require the two
// directed halves to agree under that pin.
TEST_P(SnapshotIsolationTest, PinnedReadsSeeSymmetricKnows) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> write_errors{0};

  std::thread writer([&] {
    for (int cycle = 0; cycle < kWriterCycles && !done.load(); ++cycle) {
      for (const snb::UpdateOp& add : churn_) {
        if (!sut_->Apply(add).ok()) write_errors.fetch_add(1);
        snb::UpdateOp remove = add;
        remove.kind = snb::UpdateOp::Kind::kRemoveFriendship;
        if (!sut_->Apply(remove).ok()) write_errors.fetch_add(1);
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> probes{0};
  std::atomic<uint64_t> asymmetries{0};
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      size_t i = size_t(t);
      while (!done.load()) {
        const snb::Knows& edge = churn_[i++ % churn_.size()].knows;
        concurrency::EpochGuard guard;  // one snapshot for both queries
        auto ra = sut_->OneHop(edge.person1);
        auto rb = sut_->OneHop(edge.person2);
        if (!ra.ok() || !rb.ok()) continue;
        const bool ab = FriendIds(*ra).count(edge.person2) != 0;
        const bool ba = FriendIds(*rb).count(edge.person1) != 0;
        if (ab != ba) asymmetries.fetch_add(1);
        probes.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(asymmetries.load(), 0u)
      << sut_->name() << ": " << asymmetries.load() << " of "
      << probes.load() << " pinned probes saw a half-committed friendship";
  EXPECT_EQ(write_errors.load(), 0u) << sut_->name();
  EXPECT_GT(probes.load(), 0u) << sut_->name();
}

// Repeated reads under one guard return byte-identical answers even while
// the writer churns — the snapshot does not move under a pinned reader.
TEST_P(SnapshotIsolationTest, RepeatedReadsUnderOneGuardAreStable) {
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int cycle = 0; cycle < kWriterCycles && !done.load(); ++cycle) {
      for (const snb::UpdateOp& add : churn_) {
        (void)sut_->Apply(add);
        snb::UpdateOp remove = add;
        remove.kind = snb::UpdateOp::Kind::kRemoveFriendship;
        (void)sut_->Apply(remove);
      }
    }
    done.store(true);
  });

  uint64_t drifts = 0;
  uint64_t probes = 0;
  while (!done.load()) {
    const snb::Knows& edge = churn_[probes % churn_.size()].knows;
    concurrency::EpochGuard guard;
    auto first = sut_->OneHop(edge.person1);
    auto second = sut_->OneHop(edge.person1);
    if (first.ok() && second.ok() &&
        FriendIds(*first) != FriendIds(*second)) {
      ++drifts;
    }
    ++probes;
  }
  writer.join();

  EXPECT_EQ(drifts, 0u) << sut_->name() << ": " << drifts << " of " << probes
                        << " pinned probes watched the snapshot move";
  EXPECT_GT(probes, 0u) << sut_->name();
}

INSTANTIATE_TEST_SUITE_P(EpochSuts, SnapshotIsolationTest,
                         ::testing::Values(SutKind::kNeo4jCypher,
                                           SutKind::kMatrix),
                         [](const auto& info) {
                           return info.param == SutKind::kNeo4jCypher
                                      ? "Neo4jCypher"
                                      : "Matrix";
                         });

}  // namespace
}  // namespace graphbench
