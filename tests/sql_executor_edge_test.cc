// Edge cases of the SQL planner/executor beyond the SNB query shapes.

#include <gtest/gtest.h>

#include "engines/relational/database.h"

namespace graphbench {
namespace {

class SqlExecutorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(StorageMode::kRow);
    ASSERT_TRUE(db_->CreateTable(TableSchema(
                       "a", {{"id", Value::Type::kInt},
                             {"tag", Value::Type::kString}}))
                    .ok());
    ASSERT_TRUE(db_->CreateTable(TableSchema(
                       "b", {{"aid", Value::Type::kInt},
                             {"score", Value::Type::kInt}}))
                    .ok());
    ASSERT_TRUE(db_->CreateIndex("a", "id", true).ok());
    // NOTE: b.aid is deliberately unindexed → joins to b hash-build.
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE(
          db_->InsertRow("a", {Value(i), Value(i % 2 ? "odd" : "even")})
              .ok());
      ASSERT_TRUE(db_->InsertRow("b", {Value(i), Value(i * 10)}).ok());
      ASSERT_TRUE(db_->InsertRow("b", {Value(i), Value(i * 100)}).ok());
    }
  }

  Result<QueryResult> Exec(std::string_view sql,
                           const std::vector<Value>& params = {}) {
    return db_->Execute(sql, params);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlExecutorEdgeTest, HashJoinFallbackOnUnindexedColumn) {
  auto r = Exec(
      "SELECT b.score FROM a JOIN b ON a.id = b.aid WHERE a.id = ? "
      "ORDER BY b.score",
      {Value(3)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_int(), 30);
  EXPECT_EQ(r->rows[1][0].as_int(), 300);
}

TEST_F(SqlExecutorEdgeTest, InequalityPredicates) {
  auto r = Exec("SELECT COUNT(*) FROM a WHERE id > 15");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), 5);
  auto le = Exec("SELECT COUNT(*) FROM a WHERE id <= 5");
  EXPECT_EQ(le->rows[0][0].as_int(), 5);
  auto ne = Exec("SELECT COUNT(*) FROM a WHERE id <> 1");
  EXPECT_EQ(ne->rows[0][0].as_int(), 19);
}

TEST_F(SqlExecutorEdgeTest, StringPredicateAndMultipleConjuncts) {
  auto r = Exec(
      "SELECT id FROM a WHERE tag = 'odd' AND id < 6 ORDER BY id DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);  // 1, 3, 5
  EXPECT_EQ(r->rows[0][0].as_int(), 5);
}

TEST_F(SqlExecutorEdgeTest, SelectWithoutFromEvaluatesConstants) {
  auto r = Exec("SELECT 42 AS answer");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns[0], "answer");
  EXPECT_EQ(r->rows[0][0].as_int(), 42);
}

TEST_F(SqlExecutorEdgeTest, ParamIndexOutOfRange) {
  EXPECT_FALSE(Exec("SELECT id FROM a WHERE id = ?", {}).ok());
}

TEST_F(SqlExecutorEdgeTest, LimitZeroAndLimitLargerThanResult) {
  auto zero = Exec("SELECT id FROM a LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->rows.empty());
  auto big = Exec("SELECT id FROM a LIMIT 1000");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->rows.size(), 20u);
}

TEST_F(SqlExecutorEdgeTest, OrderByMultipleKeys) {
  auto r = Exec("SELECT tag, id FROM a ORDER BY tag, id DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // "even" sorts before "odd"; within even, ids descend from 20.
  EXPECT_EQ(r->rows[0][0].as_string(), "even");
  EXPECT_EQ(r->rows[0][1].as_int(), 20);
  EXPECT_EQ(r->rows[1][1].as_int(), 18);
}

TEST_F(SqlExecutorEdgeTest, DistinctCollapsesDuplicates) {
  auto r = Exec("SELECT DISTINCT b.aid FROM b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 20u);  // two rows per aid collapse to one
}

TEST_F(SqlExecutorEdgeTest, GroupByWithAggregates) {
  auto r = Exec(
      "SELECT tag, COUNT(*) AS n, SUM(id) AS total, MIN(id) AS lo, "
      "MAX(id) AS hi FROM a GROUP BY tag ORDER BY tag");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  // even: 2,4,...,20 -> n=10 sum=110 lo=2 hi=20
  EXPECT_EQ(r->rows[0][0].as_string(), "even");
  EXPECT_EQ(r->rows[0][1].as_int(), 10);
  EXPECT_EQ(r->rows[0][2].as_int(), 110);
  EXPECT_EQ(r->rows[0][3].as_int(), 2);
  EXPECT_EQ(r->rows[0][4].as_int(), 20);
  // odd: 1,3,...,19 -> sum=100
  EXPECT_EQ(r->rows[1][2].as_int(), 100);
}

TEST_F(SqlExecutorEdgeTest, GlobalAggregatesAndAvg) {
  auto r = Exec("SELECT SUM(score) AS s, AVG(score) AS a FROM b");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // scores: i*10 and i*100 for i in 1..20 -> sum = 110*(1+..+20) = 23100
  EXPECT_EQ(r->rows[0][0].as_int(), 23100);
  EXPECT_NEAR(r->rows[0][1].as_double(), 23100.0 / 40.0, 1e-9);
}

TEST_F(SqlExecutorEdgeTest, GlobalAggregateOverEmptyInputGivesOneRow) {
  auto r = Exec("SELECT COUNT(*) AS n, MIN(id) AS lo FROM a WHERE id > 99");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 0);
  EXPECT_TRUE(r->rows[0][1].is_null());
}

TEST_F(SqlExecutorEdgeTest, GroupByOverEmptyInputGivesNoRows) {
  auto r = Exec("SELECT tag, COUNT(*) FROM a WHERE id > 99 GROUP BY tag");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(SqlExecutorEdgeTest, GroupByJoinOrderByCountDesc) {
  // Posts-per-creator shape: which a-row has the most b-rows?
  auto r = Exec(
      "SELECT a.id, COUNT(*) AS n FROM a JOIN b ON a.id = b.aid "
      "GROUP BY a.id ORDER BY n DESC, id LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][1].as_int(), 2);  // every aid has exactly 2 b-rows
  EXPECT_EQ(r->rows[0][0].as_int(), 1);  // ties broken by id
}

TEST_F(SqlExecutorEdgeTest, AggregateOrderByUnknownAliasRejected) {
  EXPECT_FALSE(
      Exec("SELECT tag, COUNT(*) AS n FROM a GROUP BY tag ORDER BY zz")
          .ok());
}

TEST_F(SqlExecutorEdgeTest, SelfJoinWithAliases) {
  auto r = Exec(
      "SELECT a2.id FROM a a1 JOIN a a2 ON a1.id = a2.id "
      "WHERE a1.id = 7");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 7);
}

TEST_F(SqlExecutorEdgeTest, JoinOnMissingAliasRejected) {
  EXPECT_FALSE(
      Exec("SELECT b.score FROM a JOIN b ON zz.id = b.aid").ok());
}

TEST_F(SqlExecutorEdgeTest, UpdateStatementWithIndexMaintenance) {
  ASSERT_TRUE(Exec("UPDATE a SET tag = 'special' WHERE id = 7").ok());
  auto r = Exec("SELECT tag FROM a WHERE id = 7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_string(), "special");

  // Updating the indexed id column relocates the index entry.
  auto moved = Exec("UPDATE a SET id = 777 WHERE id = 7");
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(moved->affected, 1u);
  EXPECT_TRUE(Exec("SELECT tag FROM a WHERE id = 7")->rows.empty());
  auto found = Exec("SELECT tag FROM a WHERE id = 777");
  ASSERT_EQ(found->rows.size(), 1u);
  EXPECT_EQ(found->rows[0][0].as_string(), "special");
}

TEST_F(SqlExecutorEdgeTest, UpdateToDuplicateUniqueKeyRejected) {
  auto r = Exec("UPDATE a SET id = 2 WHERE id = 1");
  EXPECT_TRUE(r.status().IsAlreadyExists());
  // Old row intact and still indexed.
  EXPECT_EQ(Exec("SELECT id FROM a WHERE id = 1")->rows.size(), 1u);
  EXPECT_EQ(Exec("SELECT id FROM a WHERE id = 2")->rows.size(), 1u);
}

TEST_F(SqlExecutorEdgeTest, DeleteStatementRemovesRowsAndIndexEntries) {
  auto del = Exec("DELETE FROM a WHERE id = 3");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->affected, 1u);
  EXPECT_TRUE(Exec("SELECT id FROM a WHERE id = 3")->rows.empty());
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM a")->rows[0][0].as_int(), 19);

  // Predicate deletes over a scan.
  auto bulk = Exec("DELETE FROM a WHERE tag = 'even' AND id > 10");
  ASSERT_TRUE(bulk.ok());
  EXPECT_EQ(bulk->affected, 5u);  // 12,14,16,18,20
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM a")->rows[0][0].as_int(), 14);
}

TEST_F(SqlExecutorEdgeTest, DeleteEdgeRowUpdatesColumnarAccelerator) {
  Database db(StorageMode::kColumnar);
  ASSERT_TRUE(db.CreateTable(TableSchema("knows",
                                         {{"p1", Value::Type::kInt},
                                          {"p2", Value::Type::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateIndex("knows", "p1", false).ok());
  ASSERT_TRUE(db.CreateIndex("knows", "p2", false).ok());
  ASSERT_TRUE(db.RegisterEdgeTable("knows", "p1", "p2").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO knows (p1, p2) VALUES (1, 2)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO knows (p1, p2) VALUES (2, 3)").ok());

  auto before =
      db.Execute("SELECT SHORTEST_PATH(1, 3) USING knows(p1, p2)");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows[0][0].as_int(), 2);

  ASSERT_TRUE(db.Execute("DELETE FROM knows WHERE p1 = 2 AND p2 = 3").ok());
  auto after =
      db.Execute("SELECT SHORTEST_PATH(1, 3) USING knows(p1, p2)");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].as_int(), -1);
}

TEST_F(SqlExecutorEdgeTest, EmptyDrivingSetShortCircuits) {
  auto r = Exec(
      "SELECT b.score FROM a JOIN b ON a.id = b.aid WHERE a.id = 999");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

}  // namespace
}  // namespace graphbench
