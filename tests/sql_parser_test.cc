#include "lang/sql/parser.h"

#include <gtest/gtest.h>

namespace graphbench {
namespace sql {
namespace {

TEST(SqlParserTest, SimpleSelect) {
  auto r = Parse("SELECT firstName, lastName FROM person WHERE id = 42");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = *r->select;
  EXPECT_FALSE(s.distinct);
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].name, "firstName");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "person");
  EXPECT_EQ(s.from[0].alias, "person");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.where->op, BinOp::kEq);
}

TEST(SqlParserTest, JoinWithAliasesAndParams) {
  auto r = Parse(
      "SELECT p.id AS pid FROM knows k JOIN person p ON k.person2Id = p.id "
      "WHERE k.person1Id = ? ORDER BY p.id DESC LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = *r->select;
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[1].alias, "p");
  ASSERT_NE(s.from[1].on, nullptr);
  EXPECT_EQ(s.items[0].name, "pid");
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].desc);
  EXPECT_EQ(s.limit, 10);
  EXPECT_EQ(s.where->rhs->kind, Expr::Kind::kParam);
  EXPECT_EQ(s.where->rhs->param_index, 0);
}

TEST(SqlParserTest, DistinctAndCompoundWhere) {
  auto r = Parse(
      "SELECT DISTINCT p3.id FROM knows k1 "
      "JOIN knows k2 ON k1.person2Id = k2.person1Id "
      "JOIN person p3 ON k2.person2Id = p3.id "
      "WHERE k1.person1Id = ? AND p3.id <> ?");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = *r->select;
  EXPECT_TRUE(s.distinct);
  ASSERT_EQ(s.from.size(), 3u);
  EXPECT_EQ(s.where->op, BinOp::kAnd);
  EXPECT_EQ(s.where->rhs->op, BinOp::kNe);
  EXPECT_EQ(s.where->rhs->rhs->param_index, 1);
}

TEST(SqlParserTest, CountStar) {
  auto r = Parse("SELECT COUNT(*) FROM person");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->select->items[0].expr->kind, Expr::Kind::kCountStar);
  EXPECT_EQ(r->select->items[0].name, "count");
}

TEST(SqlParserTest, ShortestPathExtension) {
  auto r = Parse(
      "SELECT SHORTEST_PATH(?, ?) USING knows(person1Id, person2Id)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Expr& e = *r->select->items[0].expr;
  EXPECT_EQ(e.kind, Expr::Kind::kShortestPath);
  EXPECT_EQ(e.sp_table, "knows");
  EXPECT_EQ(e.sp_src_col, "person1Id");
  EXPECT_EQ(e.sp_dst_col, "person2Id");
  EXPECT_TRUE(r->select->from.empty());
}

TEST(SqlParserTest, Insert) {
  auto r = Parse("INSERT INTO person (id, firstName) VALUES (?, 'Ada')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->kind, Statement::Kind::kInsert);
  const InsertStmt& ins = *r->insert;
  EXPECT_EQ(ins.table, "person");
  ASSERT_EQ(ins.columns.size(), 2u);
  EXPECT_EQ(ins.values[0]->kind, Expr::Kind::kParam);
  EXPECT_EQ(ins.values[1]->literal.as_string(), "Ada");
}

TEST(SqlParserTest, LiteralTypes) {
  auto r = Parse("SELECT id FROM t WHERE a = -5 AND b = 2.5 AND c = 'x'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(SqlParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parse("DROP TABLE person").ok());
  EXPECT_FALSE(Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra garbage here +").ok());
  EXPECT_FALSE(Parse("INSERT INTO t (a VALUES (1)").ok());
  EXPECT_FALSE(Parse("SELECT 'unterminated FROM t").ok());
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  auto r = Parse("select id from person where id = 1 order by id limit 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->select->limit, 1);
}

}  // namespace
}  // namespace sql
}  // namespace graphbench
