#include <gtest/gtest.h>

#include <memory>

#include "storage/column_table.h"
#include "storage/hash_index.h"
#include "storage/heap_table.h"
#include "util/random.h"

namespace graphbench {
namespace {

TableSchema PersonSchema() {
  return TableSchema("person", {{"id", Value::Type::kInt},
                                {"firstName", Value::Type::kString},
                                {"lastName", Value::Type::kString}});
}

// Row store and column store must satisfy the same Table contract.
class TableContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Table> Make() const {
    if (std::string(GetParam()) == "heap") {
      return std::make_unique<HeapTable>(PersonSchema());
    }
    return std::make_unique<ColumnTable>(PersonSchema());
  }
};

TEST_P(TableContractTest, InsertGetRoundTrip) {
  auto t = Make();
  auto id = t->Insert({Value(1), Value("Ada"), Value("Lovelace")});
  ASSERT_TRUE(id.ok());
  Row row;
  ASSERT_TRUE(t->Get(*id, &row).ok());
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1].as_string(), "Ada");
  EXPECT_EQ(t->row_count(), 1u);
}

TEST_P(TableContractTest, ArityMismatchRejected) {
  auto t = Make();
  EXPECT_TRUE(t->Insert({Value(1)}).status().IsInvalidArgument());
  auto id = t->Insert({Value(1), Value("A"), Value("B")});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(t->Update(*id, {Value(1)}).IsInvalidArgument());
}

TEST_P(TableContractTest, GetColumnFetchesSingleValue) {
  auto t = Make();
  auto id = t->Insert({Value(9), Value("Grace"), Value("Hopper")});
  ASSERT_TRUE(id.ok());
  Value v;
  ASSERT_TRUE(t->GetColumn(*id, 2, &v).ok());
  EXPECT_EQ(v.as_string(), "Hopper");
  EXPECT_TRUE(t->GetColumn(*id, 7, &v).IsInvalidArgument());
}

TEST_P(TableContractTest, UpdateOverwrites) {
  auto t = Make();
  auto id = t->Insert({Value(1), Value("A"), Value("B")});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(t->Update(*id, {Value(1), Value("X"), Value("Y")}).ok());
  Row row;
  ASSERT_TRUE(t->Get(*id, &row).ok());
  EXPECT_EQ(row[1].as_string(), "X");
}

TEST_P(TableContractTest, DeleteTombstonesRow) {
  auto t = Make();
  auto id1 = t->Insert({Value(1), Value("A"), Value("B")});
  auto id2 = t->Insert({Value(2), Value("C"), Value("D")});
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(t->Delete(*id1).ok());
  Row row;
  EXPECT_TRUE(t->Get(*id1, &row).IsNotFound());
  EXPECT_TRUE(t->Delete(*id1).IsNotFound());
  EXPECT_TRUE(t->Get(*id2, &row).ok());
  EXPECT_EQ(t->row_count(), 1u);
}

TEST_P(TableContractTest, ScanVisitsExactlyLiveRows) {
  auto t = Make();
  std::vector<RowId> ids;
  for (int i = 0; i < 300; ++i) {
    auto id = t->Insert({Value(i), Value("n"), Value("m")});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (int i = 0; i < 300; i += 3) ASSERT_TRUE(t->Delete(ids[size_t(i)]).ok());

  size_t seen = 0;
  for (auto it = t->NewScanIterator(); it->Valid(); it->Next()) {
    Row row;
    it->GetRow(&row);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_NE(row[0].as_int() % 3, 0);
    ++seen;
  }
  EXPECT_EQ(seen, 200u);
  EXPECT_EQ(t->row_count(), 200u);
}

TEST_P(TableContractTest, SizeAccountingTracksInsertsAndDeletes) {
  auto t = Make();
  auto id = t->Insert({Value(1), Value(std::string(500, 'x')), Value("y")});
  ASSERT_TRUE(id.ok());
  uint64_t after_insert = t->ApproximateSizeBytes();
  EXPECT_GT(after_insert, 500u);
  ASSERT_TRUE(t->Delete(*id).ok());
  EXPECT_LT(t->ApproximateSizeBytes(), after_insert);
}

INSTANTIATE_TEST_SUITE_P(Stores, TableContractTest,
                         ::testing::Values("heap", "columnar"));

TEST(HeapTableTest, RowIdsSpanPages) {
  HeapTable t(PersonSchema());
  for (size_t i = 0; i < HeapTable::kRowsPerPage + 5; ++i) {
    ASSERT_TRUE(t.Insert({Value(int64_t(i)), Value("a"), Value("b")}).ok());
  }
  Row row;
  ASSERT_TRUE(t.Get(HeapTable::kRowsPerPage + 2, &row).ok());
  EXPECT_EQ(row[0].as_int(), int64_t(HeapTable::kRowsPerPage + 2));
}

TEST(ColumnTableTest, ScanColumnSkipsDeleted) {
  ColumnTable t(PersonSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("f"), Value("l")}).ok());
  }
  ASSERT_TRUE(t.Delete(4).ok());
  std::vector<Value> values;
  std::vector<RowId> ids;
  t.ScanColumn(0, &values, &ids);
  EXPECT_EQ(values.size(), 9u);
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_NE(ids[i], 4u);
}

TEST(HashIndexTest, MultiValueLookup) {
  HashIndex idx("knows_src", /*unique=*/false);
  ASSERT_TRUE(idx.Insert(Value(int64_t{7}), 100).ok());
  ASSERT_TRUE(idx.Insert(Value(int64_t{7}), 101).ok());
  ASSERT_TRUE(idx.Insert(Value(int64_t{8}), 102).ok());
  EXPECT_EQ(idx.Lookup(Value(int64_t{7})).size(), 2u);
  EXPECT_EQ(idx.Lookup(Value(int64_t{9})).size(), 0u);
  EXPECT_EQ(idx.entry_count(), 3u);
}

TEST(HashIndexTest, UniqueIndexRejectsDuplicates) {
  HashIndex idx("person_id", /*unique=*/true);
  ASSERT_TRUE(idx.Insert(Value(int64_t{1}), 10).ok());
  EXPECT_TRUE(idx.Insert(Value(int64_t{1}), 11).IsAlreadyExists());
  auto found = idx.LookupUnique(Value(int64_t{1}));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 10u);
  EXPECT_TRUE(idx.LookupUnique(Value(int64_t{2})).status().IsNotFound());
}

TEST(HashIndexTest, RemoveDropsEntry) {
  HashIndex idx("x", false);
  ASSERT_TRUE(idx.Insert(Value("k"), 1).ok());
  ASSERT_TRUE(idx.Remove(Value("k"), 1).ok());
  EXPECT_TRUE(idx.Remove(Value("k"), 1).IsNotFound());
  EXPECT_FALSE(idx.Contains(Value("k")));
}

}  // namespace
}  // namespace graphbench
