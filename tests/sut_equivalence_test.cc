// Cross-system equivalence: all eight SUT configurations must return the
// same logical answers to every benchmark query on the same generated
// social network, before and after applying the update stream. This is the
// property that makes the paper's cross-system latency comparison
// meaningful. Each SUT runs twice — with the plan cache off (the paper's
// parse-per-call methodology) and on (prepared statements) — since the
// cache must never change answers, only latency. The same discipline
// applies to the landmark shortest-path index (DESIGN.md §9): every
// configuration also runs with landmarks off and on, since the index is
// an accelerator that must never change any answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "snb/datagen.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

snb::DatagenOptions TinyOptions() {
  snb::DatagenOptions o;
  o.num_persons = 60;
  o.seed = 99;
  o.max_degree = 20;
  return o;
}

const snb::Dataset& SharedDataset() {
  static const snb::Dataset* data =
      new snb::Dataset(snb::Generate(TinyOptions()));
  return *data;
}

class SutEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SutKind, bool, bool>> {
 protected:
  void SetUp() override {
    auto [kind, plan_cache, landmarks] = GetParam();
    sut_ = MakeSut(kind, SutOptions{.plan_cache = plan_cache,
                                    .landmarks = landmarks});
    ASSERT_NE(sut_, nullptr);
    ASSERT_EQ(sut_->plan_cache_enabled(), plan_cache) << sut_->name();
    ASSERT_EQ(sut_->landmarks_enabled(), landmarks) << sut_->name();
    Status s = sut_->Load(SharedDataset());
    ASSERT_TRUE(s.ok()) << sut_->name() << ": " << s.ToString();
  }

  // Reference answers computed directly from the dataset.
  static std::set<int64_t> RefNeighbors(int64_t person) {
    std::set<int64_t> out;
    for (const auto& k : SharedDataset().knows) {
      if (k.person1 == person) out.insert(k.person2);
      if (k.person2 == person) out.insert(k.person1);
    }
    return out;
  }

  static std::set<int64_t> RefTwoHop(int64_t person) {
    std::set<int64_t> out;
    for (int64_t f : RefNeighbors(person)) {
      for (int64_t ff : RefNeighbors(f)) {
        if (ff != person) out.insert(ff);
      }
    }
    return out;
  }

  static int RefShortestPath(int64_t from, int64_t to) {
    if (from == to) return 0;
    std::set<int64_t> visited{from};
    std::vector<int64_t> frontier{from};
    for (int depth = 1; !frontier.empty(); ++depth) {
      std::vector<int64_t> next;
      for (int64_t v : frontier) {
        for (int64_t n : RefNeighbors(v)) {
          if (visited.count(n)) continue;
          if (n == to) return depth;
          visited.insert(n);
          next.push_back(n);
        }
      }
      frontier = std::move(next);
    }
    return -1;
  }

  static std::set<int64_t> ColumnAsSet(const QueryResult& r, size_t col) {
    std::set<int64_t> out;
    for (const Row& row : r.rows) out.insert(row[col].as_int());
    return out;
  }

  std::unique_ptr<Sut> sut_;
};

TEST_P(SutEquivalenceTest, PointLookupMatchesDataset) {
  for (size_t i = 0; i < SharedDataset().persons.size(); i += 7) {
    const snb::Person& p = SharedDataset().persons[i];
    auto r = sut_->PointLookup(p.id);
    ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u) << sut_->name() << " person " << p.id;
    EXPECT_EQ(r->rows[0][0].as_string(), p.first_name) << sut_->name();
    EXPECT_EQ(r->rows[0][1].as_string(), p.last_name) << sut_->name();
  }
}

TEST_P(SutEquivalenceTest, PointLookupMissingPersonGivesNoRows) {
  auto r = sut_->PointLookup(123456789);
  ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
  EXPECT_TRUE(r->rows.empty()) << sut_->name();
}

TEST_P(SutEquivalenceTest, OneHopMatchesDataset) {
  for (size_t i = 0; i < SharedDataset().persons.size(); i += 11) {
    int64_t id = SharedDataset().persons[i].id;
    auto r = sut_->OneHop(id);
    ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
    EXPECT_EQ(ColumnAsSet(*r, 0), RefNeighbors(id))
        << sut_->name() << " person " << id;
  }
}

TEST_P(SutEquivalenceTest, TwoHopMatchesDataset) {
  for (size_t i = 0; i < SharedDataset().persons.size(); i += 17) {
    int64_t id = SharedDataset().persons[i].id;
    auto r = sut_->TwoHop(id);
    ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
    EXPECT_EQ(ColumnAsSet(*r, 0), RefTwoHop(id))
        << sut_->name() << " person " << id;
  }
}

TEST_P(SutEquivalenceTest, ShortestPathMatchesReferenceBfs) {
  const auto& persons = SharedDataset().persons;
  for (size_t i = 0; i + 13 < persons.size(); i += 13) {
    int64_t a = persons[i].id;
    int64_t b = persons[i + 13].id;
    auto r = sut_->ShortestPathLen(a, b);
    ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
    EXPECT_EQ(*r, RefShortestPath(a, b))
        << sut_->name() << " pair " << a << "," << b;
  }
}

TEST_P(SutEquivalenceTest, RecentPostsAreCreatorsNewestFirst) {
  // Pick a person with at least 2 snapshot posts.
  std::map<int64_t, std::vector<const snb::Post*>> by_creator;
  for (const auto& p : SharedDataset().posts) {
    by_creator[p.creator].push_back(&p);
  }
  for (auto& [creator, posts] : by_creator) {
    if (posts.size() < 2) continue;
    auto r = sut_->RecentPosts(creator, 5);
    ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
    ASSERT_GE(r->rows.size(), 2u) << sut_->name();
    ASSERT_LE(r->rows.size(), 5u) << sut_->name();
    // Newest first.
    for (size_t i = 1; i < r->rows.size(); ++i) {
      EXPECT_GE(r->rows[i - 1][2].as_int(), r->rows[i][2].as_int())
          << sut_->name();
    }
    // Every returned post belongs to the creator.
    std::set<int64_t> owned;
    for (const auto* p : posts) owned.insert(p->id);
    for (const Row& row : r->rows) {
      EXPECT_TRUE(owned.count(row[0].as_int())) << sut_->name();
    }
    break;  // one creator suffices
  }
}

TEST_P(SutEquivalenceTest, FriendsWithNameMatchesDataset) {
  // Build a reference: (person, first name) -> friend ids with that name.
  std::map<int64_t, std::string> name_of;
  for (const auto& p : SharedDataset().persons) name_of[p.id] = p.first_name;
  int checked = 0;
  for (size_t i = 0; i < SharedDataset().persons.size() && checked < 6;
       i += 9) {
    int64_t id = SharedDataset().persons[i].id;
    std::set<int64_t> friends = RefNeighbors(id);
    if (friends.empty()) continue;
    std::string target_name = name_of[*friends.begin()];
    std::set<int64_t> expected;
    for (int64_t f : friends) {
      if (name_of[f] == target_name) expected.insert(f);
    }
    auto r = sut_->FriendsWithName(id, target_name);
    ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
    EXPECT_EQ(ColumnAsSet(*r, 0), expected)
        << sut_->name() << " person " << id << " name " << target_name;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_P(SutEquivalenceTest, RepliesOfPostMatchesDataset) {
  // Reference: post -> set of direct reply comment ids.
  std::map<int64_t, std::set<int64_t>> replies;
  std::map<int64_t, int64_t> creator_of;
  for (const auto& c : SharedDataset().comments) {
    if (c.reply_of_post >= 0) replies[c.reply_of_post].insert(c.id);
    creator_of[c.id] = c.creator;
  }
  int checked = 0;
  for (const auto& [post, expected] : replies) {
    auto r = sut_->RepliesOfPost(post);
    ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
    EXPECT_EQ(ColumnAsSet(*r, 0), expected)
        << sut_->name() << " post " << post;
    // Creator column must match the dataset.
    for (const Row& row : r->rows) {
      EXPECT_EQ(row[2].as_int(), creator_of[row[0].as_int()])
          << sut_->name();
    }
    if (++checked == 5) break;
  }
  EXPECT_GT(checked, 0);
  // A post with no replies returns empty (pick an unused id).
  auto none = sut_->RepliesOfPost(987654321);
  ASSERT_TRUE(none.ok()) << sut_->name();
  EXPECT_TRUE(none->rows.empty()) << sut_->name();
}

TEST_P(SutEquivalenceTest, TopPostersMatchesDataset) {
  // Reference: post counts per creator, ordered count desc then id asc.
  std::map<int64_t, int64_t> counts;
  for (const auto& p : SharedDataset().posts) ++counts[p.creator];
  std::vector<std::pair<int64_t, int64_t>> ranked(counts.begin(),
                                                  counts.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  const int64_t limit = 5;
  auto r = sut_->TopPosters(limit);
  ASSERT_TRUE(r.ok()) << sut_->name() << ": " << r.status().ToString();
  ASSERT_EQ(r->rows.size(),
            std::min<size_t>(size_t(limit), ranked.size()))
      << sut_->name();
  for (size_t i = 0; i < r->rows.size(); ++i) {
    EXPECT_EQ(r->rows[i][0].as_int(), ranked[i].first)
        << sut_->name() << " rank " << i;
    EXPECT_EQ(r->rows[i][1].as_int(), ranked[i].second)
        << sut_->name() << " rank " << i;
  }
}

TEST_P(SutEquivalenceTest, UpdateStreamAppliesAndBecomesVisible) {
  const auto& stream = SharedDataset().update_stream;
  ASSERT_FALSE(stream.empty());
  size_t applied = 0;
  for (const auto& op : stream) {
    Status s = sut_->Apply(op);
    ASSERT_TRUE(s.ok()) << sut_->name() << " op kind "
                        << int(op.kind) << ": " << s.ToString();
    ++applied;
  }
  EXPECT_EQ(applied, stream.size());

  // New persons and friendships are queryable.
  for (const auto& op : stream) {
    if (op.kind == snb::UpdateOp::Kind::kAddPerson) {
      auto r = sut_->PointLookup(op.person.id);
      ASSERT_TRUE(r.ok()) << sut_->name();
      ASSERT_EQ(r->rows.size(), 1u) << sut_->name();
      EXPECT_EQ(r->rows[0][0].as_string(), op.person.first_name);
      break;
    }
  }
  for (const auto& op : stream) {
    if (op.kind == snb::UpdateOp::Kind::kAddFriendship) {
      auto r = sut_->OneHop(op.knows.person1);
      ASSERT_TRUE(r.ok()) << sut_->name();
      EXPECT_TRUE(ColumnAsSet(*r, 0).count(op.knows.person2))
          << sut_->name();
      break;
    }
  }
}

TEST_P(SutEquivalenceTest, SizeBytesIsPositiveAfterLoad) {
  EXPECT_GT(sut_->SizeBytes(), 0u) << sut_->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllSuts, SutEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(AllSutKinds()),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<SutKind, bool, bool>>&
           info) {
      std::string name = SutKindName(std::get<0>(info.param));
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      out += std::get<1>(info.param) ? "PlanCache" : "ParsePerCall";
      out += std::get<2>(info.param) ? "Landmarks" : "EngineBfs";
      return out;
    });

}  // namespace
}  // namespace graphbench
