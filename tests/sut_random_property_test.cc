// Randomized property test: on independently generated random social
// networks (several seeds and shapes), a representative SUT from each
// data-modelling family must agree with a reference implementation on
// every benchmark query, including mid-stream (after applying a random
// prefix of the update stream) and during a mixed read/write phase that
// interleaves the remaining update ops — plus synthesized unfriend ops —
// with path queries. This catches distribution-dependent bugs the
// fixed-dataset equivalence suite cannot, and (with landmarks enabled on
// two of the five families) that the landmark index stays exact while
// writes land between queries. The mixed phase also probes the two
// content-heavy aggregates (TopPosters, RepliesOfPost) so the columnar
// side tables — not just the adjacency structures — are exercised while
// posts and comments stream in.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "snb/datagen.h"
#include "sut/sut.h"
#include "util/random.h"

namespace graphbench {
namespace {

struct Shape {
  uint64_t seed;
  uint32_t persons;
  uint32_t max_degree;
  double update_window;
};

class SutRandomPropertyTest : public ::testing::TestWithParam<Shape> {};

// Reference knows-adjacency built from snapshot + an applied prefix.
class ReferenceGraph {
 public:
  ReferenceGraph(const snb::Dataset& data, size_t applied_prefix) {
    for (const auto& k : data.knows) Link(k.person1, k.person2);
    for (const auto& p : data.persons) persons_.insert(p.id);
    for (size_t i = 0; i < applied_prefix; ++i) {
      const auto& op = data.update_stream[i];
      if (op.kind == snb::UpdateOp::Kind::kAddFriendship) {
        Link(op.knows.person1, op.knows.person2);
      } else if (op.kind == snb::UpdateOp::Kind::kAddPerson) {
        persons_.insert(op.person.id);
      }
    }
  }

  std::set<int64_t> Neighbors(int64_t p) const {
    auto it = adj_.find(p);
    return it == adj_.end() ? std::set<int64_t>{} : it->second;
  }

  std::set<int64_t> TwoHop(int64_t p) const {
    std::set<int64_t> out;
    for (int64_t f : Neighbors(p)) {
      for (int64_t ff : Neighbors(f)) {
        if (ff != p) out.insert(ff);
      }
    }
    return out;
  }

  int ShortestPath(int64_t a, int64_t b) const {
    if (a == b) return 0;
    std::set<int64_t> visited{a};
    std::vector<int64_t> frontier{a};
    for (int depth = 1; !frontier.empty(); ++depth) {
      std::vector<int64_t> next;
      for (int64_t v : frontier) {
        for (int64_t n : Neighbors(v)) {
          if (visited.count(n)) continue;
          if (n == b) return depth;
          visited.insert(n);
          next.push_back(n);
        }
      }
      frontier = std::move(next);
    }
    return -1;
  }

  const std::set<int64_t>& persons() const { return persons_; }

  void Link(int64_t a, int64_t b) {
    adj_[a].insert(b);
    adj_[b].insert(a);
  }

  void Unlink(int64_t a, int64_t b) {
    adj_[a].erase(b);
    adj_[b].erase(a);
  }

  void AddPerson(int64_t p) { persons_.insert(p); }

 private:
  std::map<int64_t, std::set<int64_t>> adj_;
  std::set<int64_t> persons_;
};

std::set<int64_t> IdColumn(const QueryResult& r) {
  std::set<int64_t> out;
  for (const Row& row : r.rows) out.insert(row[0].as_int());
  return out;
}

TEST_P(SutRandomPropertyTest, FamiliesAgreeWithReferenceMidStream) {
  const Shape& shape = GetParam();
  snb::DatagenOptions options;
  options.num_persons = shape.persons;
  options.seed = shape.seed;
  options.max_degree = shape.max_degree;
  options.update_window = shape.update_window;
  snb::Dataset data = snb::Generate(options);

  // One SUT per data-modelling family (§1's four approaches) plus the
  // linear-algebra engine.
  const SutKind kinds[] = {SutKind::kPostgresSql, SutKind::kNeo4jCypher,
                           SutKind::kVirtuosoSparql, SutKind::kTitanC,
                           SutKind::kMatrix};
  std::vector<std::unique_ptr<Sut>> suts;
  for (SutKind kind : kinds) {
    // Two families run with the landmark index enabled so its answers are
    // cross-checked against the plain-BFS families and the reference.
    // The matrix SUT stays landmark-free so its SpMV BFS itself is what
    // gets cross-checked.
    const bool landmarks =
        kind == SutKind::kNeo4jCypher || kind == SutKind::kTitanC;
    auto sut = MakeSut(kind, SutOptions{.landmarks = landmarks});
    ASSERT_TRUE(sut->Load(data).ok()) << sut->name();
    suts.push_back(std::move(sut));
  }

  // Apply a random prefix of the update stream everywhere.
  Rng rng(shape.seed * 31 + 7);
  size_t prefix = data.update_stream.empty()
                      ? 0
                      : rng.Uniform(data.update_stream.size());
  for (size_t i = 0; i < prefix; ++i) {
    for (auto& sut : suts) {
      ASSERT_TRUE(sut->Apply(data.update_stream[i]).ok())
          << sut->name() << " op " << i;
    }
  }
  ReferenceGraph ref(data, prefix);

  // Content reference for the aggregate probes: per-creator post counts
  // and per-post reply (comment id → creator) maps, from the snapshot
  // plus the applied prefix.
  std::map<int64_t, int64_t> post_counts;
  std::map<int64_t, std::map<int64_t, int64_t>> post_replies;
  std::vector<int64_t> post_ids;
  auto note_post = [&](const snb::Post& p) {
    ++post_counts[p.creator];
    post_ids.push_back(p.id);
  };
  auto note_comment = [&](const snb::Comment& c) {
    if (c.reply_of_post >= 0) post_replies[c.reply_of_post][c.id] = c.creator;
  };
  for (const auto& p : data.posts) note_post(p);
  for (const auto& c : data.comments) note_comment(c);
  for (size_t i = 0; i < prefix; ++i) {
    const auto& op = data.update_stream[i];
    if (op.kind == snb::UpdateOp::Kind::kAddPost) note_post(op.post);
    if (op.kind == snb::UpdateOp::Kind::kAddComment) note_comment(op.comment);
  }
  // TopPosters reference ranking: count desc, id asc, persons with posts.
  auto expected_top = [&post_counts](size_t limit) {
    std::vector<std::pair<int64_t, int64_t>> ranked(post_counts.begin(),
                                                    post_counts.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (ranked.size() > limit) ranked.resize(limit);
    return ranked;
  };

  // Random probes.
  std::vector<int64_t> ids(ref.persons().begin(), ref.persons().end());
  ASSERT_FALSE(ids.empty());
  for (int probe = 0; probe < 12; ++probe) {
    int64_t a = ids[rng.Uniform(ids.size())];
    int64_t b = ids[rng.Uniform(ids.size())];
    std::set<int64_t> expect_one = ref.Neighbors(a);
    std::set<int64_t> expect_two = ref.TwoHop(a);
    int expect_sp = ref.ShortestPath(a, b);
    for (auto& sut : suts) {
      auto one = sut->OneHop(a);
      ASSERT_TRUE(one.ok()) << sut->name();
      EXPECT_EQ(IdColumn(*one), expect_one)
          << sut->name() << " 1-hop of " << a << " (prefix " << prefix
          << ")";
      auto two = sut->TwoHop(a);
      ASSERT_TRUE(two.ok()) << sut->name();
      EXPECT_EQ(IdColumn(*two), expect_two)
          << sut->name() << " 2-hop of " << a;
      auto sp = sut->ShortestPathLen(a, b);
      ASSERT_TRUE(sp.ok()) << sut->name();
      EXPECT_EQ(*sp, expect_sp)
          << sut->name() << " path " << a << "->" << b;
    }
  }

  // Mixed read/write phase: drain (part of) the remaining stream while
  // interleaving path queries between writes, plus synthesized unfriend
  // ops so the KNOWS relation shrinks as well as grows mid-phase.
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (const auto& k : data.knows) edges.emplace_back(k.person1, k.person2);
  for (size_t i = 0; i < prefix; ++i) {
    const auto& op = data.update_stream[i];
    if (op.kind == snb::UpdateOp::Kind::kAddFriendship) {
      edges.emplace_back(op.knows.person1, op.knows.person2);
    }
  }
  int steps = 0;
  for (size_t i = prefix; i < data.update_stream.size() && steps < 80;
       ++i, ++steps) {
    const auto& op = data.update_stream[i];
    for (auto& sut : suts) {
      ASSERT_TRUE(sut->Apply(op).ok()) << sut->name() << " op " << i;
    }
    if (op.kind == snb::UpdateOp::Kind::kAddFriendship) {
      ref.Link(op.knows.person1, op.knows.person2);
      edges.emplace_back(op.knows.person1, op.knows.person2);
    } else if (op.kind == snb::UpdateOp::Kind::kAddPerson) {
      ref.AddPerson(op.person.id);
    } else if (op.kind == snb::UpdateOp::Kind::kAddPost) {
      note_post(op.post);
    } else if (op.kind == snb::UpdateOp::Kind::kAddComment) {
      note_comment(op.comment);
    }

    if (steps % 3 == 0 && !edges.empty()) {
      size_t ei = rng.Uniform(edges.size());
      auto [p1, p2] = edges[ei];
      edges.erase(edges.begin() + long(ei));
      snb::UpdateOp unfriend;
      unfriend.kind = snb::UpdateOp::Kind::kRemoveFriendship;
      unfriend.knows.person1 = p1;
      unfriend.knows.person2 = p2;
      for (auto& sut : suts) {
        ASSERT_TRUE(sut->Apply(unfriend).ok())
            << sut->name() << " unfriend " << p1 << "," << p2;
      }
      ref.Unlink(p1, p2);
    }

    if (steps % 4 == 0) {
      int64_t a = ids[rng.Uniform(ids.size())];
      int64_t b = ids[rng.Uniform(ids.size())];
      int expect_sp = ref.ShortestPath(a, b);
      std::set<int64_t> expect_one = ref.Neighbors(a);
      for (auto& sut : suts) {
        auto sp = sut->ShortestPathLen(a, b);
        ASSERT_TRUE(sp.ok()) << sut->name();
        EXPECT_EQ(*sp, expect_sp) << sut->name() << " mid-write path " << a
                                  << "->" << b << " (step " << steps << ")";
        auto one = sut->OneHop(a);
        ASSERT_TRUE(one.ok()) << sut->name();
        EXPECT_EQ(IdColumn(*one), expect_one)
            << sut->name() << " mid-write 1-hop of " << a;
      }
    }

    // Aggregate probe: exact TopPosters ranking and the reply set of a
    // random post, while posts/comments are still streaming in.
    if (steps % 5 == 0 && !post_ids.empty()) {
      std::vector<std::pair<int64_t, int64_t>> want_top = expected_top(5);
      int64_t post_id = post_ids[rng.Uniform(post_ids.size())];
      std::set<std::pair<int64_t, int64_t>> want_replies;
      if (auto it = post_replies.find(post_id); it != post_replies.end()) {
        for (const auto& [cid, creator] : it->second) {
          want_replies.emplace(cid, creator);
        }
      }
      for (auto& sut : suts) {
        auto top = sut->TopPosters(5);
        ASSERT_TRUE(top.ok()) << sut->name();
        ASSERT_EQ(top->rows.size(), want_top.size())
            << sut->name() << " top-posters size (step " << steps << ")";
        for (size_t r = 0; r < want_top.size(); ++r) {
          EXPECT_EQ(top->rows[r][0].as_int(), want_top[r].first)
              << sut->name() << " top-posters rank " << r;
          EXPECT_EQ(top->rows[r][1].as_int(), want_top[r].second)
              << sut->name() << " top-posters count at rank " << r;
        }
        auto replies = sut->RepliesOfPost(post_id);
        ASSERT_TRUE(replies.ok()) << sut->name();
        std::set<std::pair<int64_t, int64_t>> got;
        for (const Row& row : replies->rows) {
          got.emplace(row[0].as_int(), row[2].as_int());
        }
        EXPECT_EQ(got, want_replies)
            << sut->name() << " replies of post " << post_id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SutRandomPropertyTest,
    ::testing::Values(Shape{101, 40, 10, 0.1}, Shape{202, 80, 25, 0.2},
                      Shape{303, 60, 8, 0.4}, Shape{404, 120, 40, 0.15}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "Seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace graphbench
