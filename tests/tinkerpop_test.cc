#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "engines/native/native_graph.h"
#include "engines/relational/database.h"
#include "engines/titan/titan_graph.h"
#include "kv/btree_kv.h"
#include "kv/lsm_kv.h"
#include "providers/native_provider.h"
#include "providers/sqlg_provider.h"
#include "tinkerpop/bytecode.h"
#include "tinkerpop/gremlin_server.h"
#include "tinkerpop/traversal.h"

namespace graphbench {
namespace {

// Every TinkerPop provider must produce identical traversal results on the
// same logical graph — the property that lets the paper run one Gremlin
// implementation against all compliant systems.
class ProviderContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    std::string which = GetParam();
    if (which == "native") {
      NativeGraphOptions opts;
      opts.checkpoint_interval_writes = 0;
      native_ = std::make_unique<NativeGraph>(opts);
      ASSERT_TRUE(native_->CreateUniqueIndex("Person", "id").ok());
      graph_ = std::make_unique<NativeProvider>(native_.get());
    } else if (which == "titan-b" || which == "titan-c") {
      std::unique_ptr<KvStore> kv;
      if (which == "titan-b") {
        kv = std::make_unique<BTreeKv>();
      } else {
        kv = std::make_unique<LsmKv>();
      }
      auto titan = std::make_unique<TitanGraph>(std::move(kv));
      ASSERT_TRUE(titan->RegisterUniqueIndex("Person", "id").ok());
      graph_ = std::move(titan);
    } else {  // sqlg
      db_ = std::make_unique<Database>(StorageMode::kRow);
      ASSERT_TRUE(db_->CreateTable(TableSchema(
                         "person", {{"id", Value::Type::kInt},
                                    {"firstName", Value::Type::kString}}))
                      .ok());
      ASSERT_TRUE(db_->CreateTable(TableSchema(
                         "knows", {{"person1Id", Value::Type::kInt},
                                   {"person2Id", Value::Type::kInt}}))
                      .ok());
      ASSERT_TRUE(db_->CreateIndex("person", "id", true).ok());
      ASSERT_TRUE(db_->CreateIndex("knows", "person1Id", false).ok());
      ASSERT_TRUE(db_->CreateIndex("knows", "person2Id", false).ok());
      auto sqlg = std::make_unique<SqlgProvider>(db_.get());
      ASSERT_TRUE(sqlg->RegisterVertexLabel("Person", "person").ok());
      ASSERT_TRUE(sqlg->RegisterEdgeLabel("knows", "knows", "person1Id",
                                          "person2Id", "Person", "Person")
                      .ok());
      graph_ = std::move(sqlg);
    }

    // Persons 1..5, knows chain 1-2-3-4-5 plus shortcut 1-3.
    const char* names[] = {"Ada", "Bob", "Cy", "Dee", "Eve"};
    std::vector<GVertex> v;
    for (int i = 1; i <= 5; ++i) {
      auto added = graph_->AddVertex(
          "Person",
          {{"id", Value(i)}, {"firstName", Value(names[i - 1])}});
      ASSERT_TRUE(added.ok()) << added.status().ToString();
      v.push_back(*added);
    }
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 3}}) {
      ASSERT_TRUE(graph_
                      ->AddEdge("knows", v[size_t(a - 1)], v[size_t(b - 1)],
                                {{"creationDate", Value(20170707)}})
                      .ok());
    }
  }

  Result<std::vector<Value>> Run(const Traversal& t) {
    return ExecuteTraversal(graph_.get(), t);
  }

  std::unique_ptr<NativeGraph> native_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<GremlinGraph> graph_;
};

TEST_P(ProviderContractTest, CountsMatch) {
  EXPECT_EQ(graph_->VertexCount(), 5u);
  EXPECT_EQ(graph_->EdgeCount(), 5u);
  EXPECT_GT(graph_->ApproximateSizeBytes(), 0u);
}

TEST_P(ProviderContractTest, PointLookupTraversal) {
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(3)).Values("firstName");
  auto r = Run(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].as_string(), "Cy");
}

TEST_P(ProviderContractTest, OneHopBoth) {
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(3)).Both("knows").Values("id");
  auto r = Run(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> ids;
  for (const Value& v : *r) ids.push_back(v.as_int());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 2, 4}));
}

TEST_P(ProviderContractTest, OutAndInRespectDirection) {
  Traversal out;
  out.V().HasIndexed("Person", "id", Value(1)).Out("knows").Count();
  auto r_out = Run(out);
  ASSERT_TRUE(r_out.ok());
  EXPECT_EQ((*r_out)[0].as_int(), 2);

  Traversal in;
  in.V().HasIndexed("Person", "id", Value(1)).In("knows").Count();
  auto r_in = Run(in);
  ASSERT_TRUE(r_in.ok());
  EXPECT_EQ((*r_in)[0].as_int(), 0);
}

TEST_P(ProviderContractTest, TwoHopWithDedupAndWhere) {
  Traversal t;
  t.V()
      .HasIndexed("Person", "id", Value(1))
      .As("p")
      .Both("knows")
      .Both("knows")
      .WhereNeq("p")
      .Dedup()
      .Values("id");
  auto r = Run(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> ids;
  for (const Value& v : *r) ids.push_back(v.as_int());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{2, 3, 4}));
}

TEST_P(ProviderContractTest, ShortestPathStep) {
  Traversal t;
  t.V()
      .HasIndexed("Person", "id", Value(1))
      .ShortestPath("knows", "id", Value(5));
  auto r = Run(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].as_int(), 3);

  Traversal self;
  self.V()
      .HasIndexed("Person", "id", Value(2))
      .ShortestPath("knows", "id", Value(2));
  auto r_self = Run(self);
  ASSERT_TRUE(r_self.ok());
  EXPECT_EQ((*r_self)[0].as_int(), 0);
}

TEST_P(ProviderContractTest, VertexScanAndLimit) {
  Traversal t;
  t.V("Person").Values("id").Dedup().Limit(3);
  auto r = Run(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);
}

TEST_P(ProviderContractTest, HasFilterMidTraversal) {
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(1)).Both("knows")
      .Has("firstName", Value("Cy")).Values("id");
  auto r = Run(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].as_int(), 3);
}

TEST_P(ProviderContractTest, DuplicateIdRejected) {
  auto dup = graph_->AddVertex("Person", {{"id", Value(1)}});
  EXPECT_TRUE(dup.status().IsAlreadyExists());
}

TEST_P(ProviderContractTest, UpdateTraversalAddVAndAddE) {
  Traversal addv;
  addv.AddV("Person", {{"id", Value(6)}, {"firstName", Value("Fay")}});
  auto r = Run(addv);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(graph_->VertexCount(), 6u);

  // Binding two independent anchors in one traversal is unsupported
  // (HasIndexed mid-traversal is a filter), so attach the edge through the
  // structure API as the loaders do.
  auto v5 = graph_->VerticesByProperty("Person", "id", Value(5));
  auto v6 = graph_->VerticesByProperty("Person", "id", Value(6));
  ASSERT_TRUE(v5.ok());
  ASSERT_TRUE(v6.ok());
  ASSERT_TRUE(graph_->AddEdge("knows", (*v5)[0], (*v6)[0], {}).ok());
  EXPECT_EQ(graph_->EdgeCount(), 6u);

  Traversal check;
  check.V().HasIndexed("Person", "id", Value(6)).Both("knows").Values("id");
  auto nb = Run(check);
  ASSERT_TRUE(nb.ok());
  ASSERT_EQ(nb->size(), 1u);
  EXPECT_EQ((*nb)[0].as_int(), 5);
}

INSTANTIATE_TEST_SUITE_P(Providers, ProviderContractTest,
                         ::testing::Values("native", "titan-b", "titan-c",
                                           "sqlg"));

TEST(BytecodeTest, TraversalRoundTrip) {
  Traversal t;
  t.V()
      .HasIndexed("Person", "id", Value(42))
      .As("p")
      .Both("knows")
      .WhereNeq("p")
      .Dedup()
      .Values("firstName")
      .Limit(10);
  std::string bytes = gremlinio::EncodeTraversal(t);
  auto decoded = gremlinio::DecodeTraversal(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->steps().size(), t.steps().size());
  for (size_t i = 0; i < t.steps().size(); ++i) {
    EXPECT_EQ(decoded->steps()[i].kind, t.steps()[i].kind);
    EXPECT_EQ(decoded->steps()[i].label, t.steps()[i].label);
    EXPECT_EQ(decoded->steps()[i].key, t.steps()[i].key);
    EXPECT_EQ(decoded->steps()[i].value, t.steps()[i].value);
    EXPECT_EQ(decoded->steps()[i].n, t.steps()[i].n);
  }
}

TEST(BytecodeTest, ResultsRoundTripAndCorruption) {
  std::vector<Value> results{Value(1), Value("x"), Value(2.5), Value()};
  std::string bytes = gremlinio::EncodeResults(results);
  auto decoded = gremlinio::DecodeResults(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, results);
  EXPECT_FALSE(
      gremlinio::DecodeResults(bytes.substr(0, bytes.size() - 2)).ok());
  EXPECT_FALSE(gremlinio::DecodeTraversal("garbage!").ok());
}

TEST(GremlinServerTest, RoundTripThroughServer) {
  NativeGraphOptions opts;
  opts.checkpoint_interval_writes = 0;
  NativeGraph native(opts);
  ASSERT_TRUE(native.CreateUniqueIndex("Person", "id").ok());
  NativeProvider provider(&native);
  ASSERT_TRUE(provider.AddVertex("Person", {{"id", Value(1)},
                                            {"firstName", Value("Ada")}})
                  .ok());
  GremlinServerOptions server_opts;
  server_opts.workers = 2;
  GremlinServer server(&provider, server_opts);

  Traversal t;
  t.V().HasIndexed("Person", "id", Value(1)).Values("firstName");
  auto r = server.Submit(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].as_string(), "Ada");
  EXPECT_EQ(server.requests_served(), 1u);

  // Embedded mode bypasses the codec+queue.
  auto embedded = server.SubmitEmbedded(t);
  ASSERT_TRUE(embedded.ok());
  EXPECT_EQ((*embedded)[0].as_string(), "Ada");
}

TEST(GremlinServerTest, OverloadRejectsWithBusy) {
  NativeGraphOptions opts;
  opts.checkpoint_interval_writes = 0;
  NativeGraph native(opts);
  NativeProvider provider(&native);
  // Build a long chain so traversals take a little while.
  GVertex prev = *provider.AddVertex("Person", {{"id", Value(0)}});
  for (int i = 1; i < 2000; ++i) {
    GVertex v = *provider.AddVertex("Person", {{"id", Value(i)}});
    ASSERT_TRUE(provider.AddEdge("knows", prev, v, {}).ok());
    prev = v;
  }
  GremlinServerOptions server_opts;
  server_opts.workers = 1;
  server_opts.max_queue = 1;
  GremlinServer server(&provider, server_opts);

  // Flood from many client threads; with queue=1 some must be rejected.
  std::atomic<int> busy{0}, ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      Traversal t;
      t.V("Person").Both("knows").Dedup().Count();
      auto r = server.Submit(t);
      if (r.ok()) ++ok;
      else if (r.status().IsBusy()) ++busy;
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_GT(busy.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(server.requests_rejected(), uint64_t(busy.load()));
}

}  // namespace
}  // namespace graphbench
