// Step-machine edge cases beyond the benchmark query shapes.

#include <gtest/gtest.h>

#include "engines/native/native_graph.h"
#include "providers/native_provider.h"
#include "tinkerpop/traversal.h"

namespace graphbench {
namespace {

class TraversalStepsTest : public ::testing::Test {
 protected:
  TraversalStepsTest() : provider_(&graph_) {}

  void SetUp() override {
    ASSERT_TRUE(graph_.CreateUniqueIndex("Person", "id").ok());
    for (int i = 1; i <= 5; ++i) {
      auto v = provider_.AddVertex(
          "Person", {{"id", Value(i)}, {"rank", Value(10 - i)}});
      ASSERT_TRUE(v.ok());
      vertices_.push_back(*v);
    }
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(provider_
                      .AddEdge("knows", vertices_[size_t(i)],
                               vertices_[size_t(i) + 1], {})
                      .ok());
    }
  }

  Result<std::vector<Value>> Run(const Traversal& t) {
    return ExecuteTraversal(&provider_, t);
  }

  NativeGraph graph_{NativeGraphOptions{.checkpoint_interval_writes = 0}};
  NativeProvider provider_;
  std::vector<GVertex> vertices_;
};

TEST_F(TraversalStepsTest, CountOnEmptySetIsZero) {
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(999)).Both("knows").Count();
  auto r = Run(t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].as_int(), 0);
}

TEST_F(TraversalStepsTest, OrderByAscending) {
  Traversal t;
  t.V("Person").OrderBy("rank", /*desc=*/false).Values("id");
  auto r = Run(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 5u);
  // rank = 10 - id, so ascending rank = descending id.
  EXPECT_EQ((*r)[0].as_int(), 5);
  EXPECT_EQ((*r)[4].as_int(), 1);
}

TEST_F(TraversalStepsTest, LimitAfterOrder) {
  Traversal t;
  t.V("Person").OrderBy("id", true).Limit(2).Values("id");
  auto r = Run(t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].as_int(), 5);
  EXPECT_EQ((*r)[1].as_int(), 4);
}

TEST_F(TraversalStepsTest, VerticesRenderAsIdProperty) {
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(2)).Both("knows");
  auto r = Run(t);
  ASSERT_TRUE(r.ok());
  std::vector<int64_t> ids;
  for (const Value& v : *r) ids.push_back(v.as_int());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 3}));
}

TEST_F(TraversalStepsTest, ValuesOnValueFails) {
  Traversal t;
  t.V("Person").Values("id").Values("id");
  EXPECT_FALSE(Run(t).ok());
}

TEST_F(TraversalStepsTest, AdjacencyOnValueFails) {
  Traversal t;
  t.V("Person").Values("id").Both("knows");
  EXPECT_FALSE(Run(t).ok());
}

TEST_F(TraversalStepsTest, AddEdgeToMissingTargetFails) {
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(1))
      .AddEdgeTo("knows", "Person", "id", Value(999), {});
  auto r = Run(t);
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(TraversalStepsTest, ShortestPathRespectsMaxDepth) {
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(1))
      .ShortestPath("knows", "id", Value(5), /*max_depth=*/2);
  auto r = Run(t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].as_int(), -1);  // distance 4 > max depth 2

  Traversal deep;
  deep.V().HasIndexed("Person", "id", Value(1))
      .ShortestPath("knows", "id", Value(5), /*max_depth=*/10);
  auto rd = Run(deep);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ((*rd)[0].as_int(), 4);
}

TEST_F(TraversalStepsTest, DedupOnValuesNotJustVertices) {
  Traversal t;
  // Walk to neighbours from both endpoints of the chain middle; ranks of
  // vertices 2 and 4 differ, vertex 3 reachable twice.
  t.V().HasIndexed("Person", "id", Value(3)).Both("knows").Both("knows")
      .Values("id").Dedup();
  auto r = Run(t);
  ASSERT_TRUE(r.ok());
  std::set<int64_t> ids;
  size_t total = 0;
  for (const Value& v : *r) {
    ids.insert(v.as_int());
    ++total;
  }
  EXPECT_EQ(ids.size(), total);  // no duplicates survive
}

TEST_F(TraversalStepsTest, HasIndexedMidTraversalFilters) {
  Traversal t;
  t.V("Person").HasIndexed("Person", "id", Value(3)).Values("rank");
  auto r = Run(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].as_int(), 7);
}

TEST_F(TraversalStepsTest, ValueMapFlattensInKeyOrder) {
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(2)).ValueMap({"id", "rank"});
  auto r = Run(t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].as_int(), 2);
  EXPECT_EQ((*r)[1].as_int(), 8);
}

}  // namespace
}  // namespace graphbench
