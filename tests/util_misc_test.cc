#include <gtest/gtest.h>

#include <atomic>

#include "util/histogram.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace graphbench {
namespace {

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(50), 50, 5);
  EXPECT_NEAR(h.Percentile(99), 99, 10);
}

TEST(HistogramTest, MergeAndClear) {
  Histogram a, b;
  a.Add(10);
  b.Add(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 20u);
  a.Clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(50), 0.0);
}

TEST(HistogramTest, LargeValuesLandInTailBuckets) {
  Histogram h;
  h.Add(5'000'000);  // 5 seconds
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 5'000'000u);
  EXPECT_GT(h.Percentile(50), 0.0);
}

TEST(StringUtilTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EqualsIgnoreCase("MATCH", "match"));
  EXPECT_FALSE(EqualsIgnoreCase("MATCH", "MATC"));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  std::string big(600, 'a');
  EXPECT_EQ(StringPrintf("%s", big.c_str()).size(), 600u);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { counter++; }));
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, BoundedQueueRejectsOverflow) {
  ThreadPool pool(1, /*max_queue=*/2);
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release) std::this_thread::yield();
  });
  // Worker busy; queue capacity 2.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += pool.Submit([] {});
  EXPECT_LE(accepted, 2 + 1);  // small race margin on dequeue timing
  EXPECT_LT(accepted, 10);
  release = true;
  pool.Drain();
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(TablePrinterTest, AlignedOutputAndCsv) {
  TablePrinter t("Table X");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22,2"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("Table X"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1"), std::string::npos);
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("\"22,2\""), std::string::npos);
}

}  // namespace
}  // namespace graphbench
