#include "util/random.h"

#include <gtest/gtest.h>

#include <map>

namespace graphbench {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(123), c2(124);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  ZipfGenerator zipf(1000, 0.9, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next()];
  // Rank 0 should dominate rank 100 heavily under theta=0.9.
  EXPECT_GT(counts[0], 20 * std::max(counts[100], 1));
  for (auto& [rank, n] : counts) EXPECT_LT(rank, 1000u);
}

TEST(ZipfTest, CoversRange) {
  ZipfGenerator zipf(10, 0.5, 11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[zipf.Next()];
  EXPECT_GE(counts.size(), 8u);  // nearly all ranks observed
}

TEST(PowerLawTest, RespectsBoundsAndSkew) {
  PowerLawDegree deg(5, 500, 2.5, 17);
  uint64_t below_50 = 0, total = 0;
  for (int i = 0; i < 10000; ++i) {
    uint32_t k = deg.Next();
    EXPECT_GE(k, 5u);
    EXPECT_LE(k, 500u);
    below_50 += (k < 50);
    ++total;
  }
  // Heavy-tailed: most mass near the minimum.
  EXPECT_GT(below_50, total * 8 / 10);
}

}  // namespace
}  // namespace graphbench
