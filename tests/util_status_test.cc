#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace graphbench {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status s = Status::NotFound("person 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: person 42");
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::Internal().IsInternal());
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Busy());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  GB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.value_or(7), 7);
}

Result<int> UsesAssignOrReturn(int x) {
  GB_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = UsesAssignOrReturn(10);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 21);
  EXPECT_TRUE(UsesAssignOrReturn(0).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace graphbench
