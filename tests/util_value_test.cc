#include "util/value.h"

#include <gtest/gtest.h>

namespace graphbench {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{7}).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_EQ(Value(int64_t{7}).as_int(), 7);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_TRUE(Value(1).is_int());  // int promotes to int64
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, CompareWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_LT(Value(false), Value(true));
  EXPECT_LT(Value(1.5), Value(2.5));
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
}

TEST(ValueTest, CrossTypeOrderingByTag) {
  EXPECT_LT(Value(), Value(false));          // null < bool
  EXPECT_LT(Value(true), Value(int64_t{0})); // bool < int
  EXPECT_LT(Value(int64_t{5}), Value("a"));  // numeric < string
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value("k").Hash(), Value(std::string("k")).Hash());
  // Distinct values usually hash differently (not guaranteed; spot check).
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
}

}  // namespace
}  // namespace graphbench
