#include "storage/wal.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "storage/os_file.h"
#include "util/random.h"

namespace graphbench {
namespace storage {
namespace {

// The salt the checked-in golden log (tests/data/wal_v1.golden) was
// generated with, and the three records it frames.
constexpr uint64_t kGoldenSalt = 0x0123456789ABCDEF;

std::string ReadGoldenFile() {
  std::string path = std::string(GRAPHBENCH_TEST_DATA) + "/wal_v1.golden";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string FileContents(MemFileSystem* fs, const std::string& path) {
  auto file = fs->Open(path);
  EXPECT_TRUE(file.ok());
  auto size = (*file)->Size();
  EXPECT_TRUE(size.ok());
  std::string out;
  EXPECT_TRUE((*file)->ReadAt(0, size_t(*size), &out).ok());
  return out;
}

void WriteFileContents(MemFileSystem* fs, const std::string& path,
                       const std::string& contents) {
  auto file = fs->Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Truncate(0).ok());
  ASSERT_TRUE((*file)->Append(contents).ok());
  ASSERT_TRUE((*file)->Sync().ok());
}

// Byte-for-byte format pin: appending the golden record sequence must
// reproduce the checked-in file exactly. Any encoding change — framing,
// CRC seed, header layout — trips this before it can silently orphan
// existing logs.
TEST(WalGoldenTest, AppendReproducesGoldenBytes) {
  MemFileSystem fs;
  auto wal = Wal::Create(&fs, "wal", kGoldenSalt);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE((*wal)->Append(7, "alpha").ok());
  ASSERT_TRUE((*wal)->Append(7, "beta-record").ok());
  ASSERT_TRUE((*wal)->Append(9, "").ok());
  ASSERT_TRUE((*wal)->Sync().ok());

  std::string golden = ReadGoldenFile();
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(FileContents(&fs, "wal"), golden);
}

// The replay half of the round trip: the golden bytes scan back into
// exactly the records that produced them.
TEST(WalGoldenTest, GoldenBytesReplayToOriginalRecords) {
  MemFileSystem fs;
  WriteFileContents(&fs, "wal", ReadGoldenFile());

  auto scan = Wal::Scan(&fs, "wal", kGoldenSalt);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->header_ok);
  EXPECT_EQ(scan->truncated_bytes, 0u);
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].lsn, 1u);
  EXPECT_EQ(scan->records[0].type, 7u);
  EXPECT_EQ(scan->records[0].body, "alpha");
  EXPECT_EQ(scan->records[1].lsn, 2u);
  EXPECT_EQ(scan->records[1].body, "beta-record");
  EXPECT_EQ(scan->records[2].lsn, 3u);
  EXPECT_EQ(scan->records[2].type, 9u);
  EXPECT_EQ(scan->records[2].body, "");
  EXPECT_EQ(scan->last_lsn, 3u);
}

// A log stamped with a future format version must be refused whole, not
// misread record by record.
TEST(WalGoldenTest, RejectsUnknownVersion) {
  MemFileSystem fs;
  std::string bytes = ReadGoldenFile();
  bytes[8] = char(kWalVersion + 1);  // version field, first byte (LE)
  WriteFileContents(&fs, "wal", bytes);

  auto scan = Wal::Scan(&fs, "wal", kGoldenSalt);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->header_ok);
  EXPECT_TRUE(scan->records.empty());
}

// A salt mismatch means the log belongs to an older checkpoint
// generation: nothing in it may replay.
TEST(WalGoldenTest, RejectsStaleSalt) {
  MemFileSystem fs;
  WriteFileContents(&fs, "wal", ReadGoldenFile());
  auto scan = Wal::Scan(&fs, "wal", kGoldenSalt + 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->header_ok);
  EXPECT_TRUE(scan->records.empty());
}

// Corrupting one byte of a record body invalidates that record's CRC and
// everything after it, but the prefix still replays.
TEST(WalGoldenTest, CrcCorruptionCutsScanAtTheBadRecord) {
  MemFileSystem fs;
  std::string bytes = ReadGoldenFile();
  // Record 2's body starts after header(24) + record1 frame(8+14) = 46,
  // frame header 8, payload lsn+type 9: flip a body byte.
  size_t body_off = 24 + 22 + 8 + 9 + 2;
  ASSERT_LT(body_off, bytes.size());
  bytes[body_off] ^= 0x40;
  WriteFileContents(&fs, "wal", bytes);

  auto scan = Wal::Scan(&fs, "wal", kGoldenSalt);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->header_ok);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].body, "alpha");
  EXPECT_GT(scan->truncated_bytes, 0u);
}

// Open() truncates a torn tail (a partial append a crash left behind) and
// resumes LSNs after the last valid record.
TEST(WalTest, OpenTruncatesTornTailAndResumesAppending) {
  MemFileSystem fs;
  std::string bytes = ReadGoldenFile();
  std::string torn = bytes.substr(0, bytes.size() - 5);
  WriteFileContents(&fs, "wal", torn);

  WalScanResult scan;
  auto wal = Wal::Open(&fs, "wal", kGoldenSalt, &scan);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.records.size(), 2u);  // record 3 lost its tail
  EXPECT_GT(scan.truncated_bytes, 0u);

  auto lsn = (*wal)->Append(7, "resumed");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);  // continues after last valid LSN
  ASSERT_TRUE((*wal)->Sync().ok());

  auto rescan = Wal::Scan(&fs, "wal", kGoldenSalt);
  ASSERT_TRUE(rescan.ok());
  ASSERT_EQ(rescan->records.size(), 3u);
  EXPECT_EQ(rescan->records[2].body, "resumed");
}

// ResetForCheckpoint starts a new salt generation; records written under
// the old salt no longer validate, and LSNs keep counting.
TEST(WalTest, ResetForCheckpointInvalidatesOldGeneration) {
  MemFileSystem fs;
  auto wal = Wal::Create(&fs, "wal", /*salt=*/11);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "pre-checkpoint").ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  ASSERT_TRUE((*wal)->ResetForCheckpoint(/*new_salt=*/12).ok());
  auto lsn = (*wal)->Append(1, "post-checkpoint");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);  // monotonic across the reset
  ASSERT_TRUE((*wal)->Sync().ok());

  auto stale = Wal::Scan(&fs, "wal", /*expected_salt=*/11);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->header_ok);
  auto fresh = Wal::Scan(&fs, "wal", /*expected_salt=*/12);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->records.size(), 1u);
  EXPECT_EQ(fresh->records[0].body, "post-checkpoint");
}

// Unsynced appends may be lost or torn by a crash, but the synced prefix
// always survives and the scan never returns a half-record.
TEST(WalTest, CrashLosesOnlyUnsyncedSuffix) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    MemFileSystem fs;
    auto wal = Wal::Create(&fs, "wal", /*salt=*/5);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append(1, "synced" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append(1, "pending" + std::to_string(i)).ok());
    }
    fs.Crash(&rng);

    auto scan = Wal::Scan(&fs, "wal", /*expected_salt=*/5);
    ASSERT_TRUE(scan.ok());
    EXPECT_TRUE(scan->header_ok);
    ASSERT_GE(scan->records.size(), 5u);
    ASSERT_LE(scan->records.size(), 10u);
    for (size_t i = 0; i < scan->records.size(); ++i) {
      EXPECT_EQ(scan->records[i].lsn, i + 1);
      std::string expect = i < 5 ? "synced" + std::to_string(i)
                                 : "pending" + std::to_string(i - 5);
      EXPECT_EQ(scan->records[i].body, expect);
    }
  }
}

// A failed append may persist a sector-aligned partial frame. Because
// appends are positioned writes at the (unadvanced) append offset, the
// next record overwrites that garbage — it must never splice itself
// after it, which would make every later record unreachable to the
// scanner.
TEST(WalTest, ShortWriteDoesNotOrphanLaterRecords) {
  MemFileSystem base;
  FaultOptions fault;
  fault.short_write_at = 3;  // write 1 = header, write 2 = record A
  FaultFileSystem faulty(&base, fault);
  auto wal = Wal::Create(&faulty, "wal", /*salt=*/77);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  // Bodies > one sector so the torn prefix actually persists bytes.
  std::string body_a(600, 'a'), body_b(700, 'b'), body_c(650, 'c');
  ASSERT_TRUE((*wal)->Append(1, body_a).ok());
  auto torn = (*wal)->Append(1, body_b);
  ASSERT_FALSE(torn.ok());  // the scheduled short write
  auto lsn_c = (*wal)->Append(1, body_c);
  ASSERT_TRUE(lsn_c.ok()) << lsn_c.status().ToString();
  ASSERT_TRUE((*wal)->Sync().ok());

  auto scan = Wal::Scan(&base, "wal", /*expected_salt=*/77);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->header_ok);
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].body, body_a);
  EXPECT_EQ(scan->records[1].body, body_c);
  EXPECT_EQ(scan->records[1].lsn, 3u);  // the torn record's LSN is skipped
}

}  // namespace
}  // namespace storage
}  // namespace graphbench
