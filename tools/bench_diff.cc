// bench_diff: compares two BENCH_*.json reports and fails (exit 1) when a
// shared latency metric regressed beyond the threshold. Intended for CI:
//
//   bench_diff [--threshold_pct=15] before.json after.json
//   bench_diff --selftest
//
// Exit codes: 0 = no regression, 1 = regression found, 2 = usage/IO error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchlib/bench_diff.h"
#include "obs/report.h"
#include "util/histogram.h"
#include "util/json.h"

namespace {

using namespace graphbench;

Result<Json> ReadJsonFile(const char* path) {
  FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    return Status::NotFound(std::string("cannot open ") + path);
  }
  std::string body;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, n);
  }
  std::fclose(f);
  return Json::Parse(body);
}

// Builds a report through the real serialization path and diffs it against
// itself: every shared metric must appear with a 0% delta and no
// regression. Guards the metric-discovery logic against schema drift.
int SelfTest(double threshold_pct) {
  obs::BenchReport report("selftest", "tiny");
  Json entry = Json::Object();
  entry.Set("two_hop_ms", Json::Number(3.5));
  entry.Set("point_lookup_ms", Json::Number(0.02));
  entry.Set("reads_per_second", Json::Number(1200.0));
  entry.Set("writes_per_second", Json::Number(300.0));
  Histogram h;
  for (uint64_t us = 100; us <= 1000; us += 100) h.Add(us);
  entry.Set("read_latency", obs::HistogramJson(h));
  report.AddSystem("neo4j-cypher", std::move(entry));

  auto parsed = Json::Parse(report.ToJson().Serialize());
  if (!parsed.ok()) {
    std::fprintf(stderr, "selftest: reserialize failed: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  auto diff = benchlib::DiffReports(*parsed, *parsed, threshold_pct);
  if (!diff.ok()) {
    std::fprintf(stderr, "selftest: diff failed: %s\n",
                 diff.status().ToString().c_str());
    return 2;
  }
  // 2 "_ms" keys + 2 "_per_second" keys + 4 histogram latency fields.
  if (diff->deltas.size() != 8) {
    std::fprintf(stderr,
                 "selftest: expected 8 shared metrics, found %zu\n",
                 diff->deltas.size());
    return 2;
  }
  for (const auto& d : diff->deltas) {
    if (d.delta_pct != 0 || d.regressed) {
      std::fprintf(stderr, "selftest: self-diff of %s/%s is %+f%%\n",
                   d.system.c_str(), d.metric.c_str(), d.delta_pct);
      return 2;
    }
  }
  std::printf("selftest passed: %zu metrics, all deltas zero\n",
              diff->deltas.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pct = 15;
  bool selftest = false;
  const char* files[2] = {nullptr, nullptr};
  int file_count = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threshold_pct=", 16) == 0) {
      char* end = nullptr;
      threshold_pct = std::strtod(arg + 16, &end);
      if (end == arg + 16 || *end != '\0') {
        std::fprintf(stderr, "invalid --threshold_pct value: %s\n",
                     arg + 16);
        return 2;
      }
    } else if (std::strcmp(arg, "--selftest") == 0) {
      selftest = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    } else if (file_count < 2) {
      files[file_count++] = arg;
    } else {
      std::fprintf(stderr, "too many arguments: %s\n", arg);
      return 2;
    }
  }

  if (selftest) return SelfTest(threshold_pct);

  if (file_count != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold_pct=15] before.json "
                 "after.json\n       bench_diff --selftest\n");
    return 2;
  }

  auto before = ReadJsonFile(files[0]);
  if (!before.ok()) {
    std::fprintf(stderr, "%s: %s\n", files[0],
                 before.status().ToString().c_str());
    return 2;
  }
  auto after = ReadJsonFile(files[1]);
  if (!after.ok()) {
    std::fprintf(stderr, "%s: %s\n", files[1],
                 after.status().ToString().c_str());
    return 2;
  }
  auto diff = benchlib::DiffReports(*before, *after, threshold_pct);
  if (!diff.ok()) {
    std::fprintf(stderr, "%s\n", diff.status().ToString().c_str());
    return 2;
  }
  std::fputs(benchlib::FormatDiff(*diff, threshold_pct).c_str(), stdout);
  return diff->HasRegression() ? 1 : 0;
}
